//! The staged training pipeline behind [`Lisa::train_for`].
//!
//! Training (paper Fig. 2, left and middle columns) is decomposed into
//! five explicit stages:
//!
//! 1. [`Stage::GenerateDfgs`] — synthesise the raw training DFGs (§V-A);
//! 2. [`Stage::GenerateLabels`] — the iterative label generation (§V-B),
//!    the time-dominant step;
//! 3. [`Stage::FilterAndSplit`] — the §V-C quality filter and the
//!    train/holdout split;
//! 4. [`Stage::TrainNets`] — the four GNN label networks (§IV-B, §VI-B);
//! 5. [`Stage::Evaluate`] — the Table II holdout accuracy row.
//!
//! Each stage consumes and produces plain data, reports through the
//! [`EventSink`], and — when a checkpoint directory is configured —
//! persists its artifact in a versioned text format:
//!
//! | artifact | format | written by |
//! |---|---|---|
//! | [`DFGS_FILE`] | `lisa-dfg-set v1` | GenerateDfgs |
//! | [`DATASET_FILE`] | `lisa-dataset v1` | GenerateLabels (incremental) |
//! | [`MODEL_FILE`] | `lisa-model v1` | Evaluate |
//!
//! The dataset artifact is flushed entry-by-entry, so a run killed during
//! label generation leaves a recoverable prefix: the next run with the
//! same configuration parses it leniently, verifies every recovered DFG
//! against the regenerated ones (a config or seed mismatch is a
//! [`TrainError::ResumeMismatch`], never silent corruption), and picks up
//! at the first missing entry. Because per-DFG label generation is
//! deterministic and floats round-trip byte-identically, a resumed run
//! exports the same model bytes as a cold run (pinned by
//! `tests/pipeline.rs`).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use lisa_arch::Accelerator;
use lisa_dfg::{random, text as dfg_text, Dfg};
use lisa_events::{EventSink, LabelGenResult, PipelineEvent};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};
use lisa_labels::attributes::{DUMMY_ATTR_DIM, EDGE_ATTR_DIM, NODE_ATTR_DIM};
use lisa_labels::dataset::{self, DatasetEntry, DatasetParseError, DatasetWriter};
use lisa_labels::{filter, generate_labels_with, TrainingSet};
use lisa_mapper::GuidanceLabels;

use crate::framework::{evaluate_accuracy, Lisa};
use crate::report::TrainingStats;
use crate::LisaConfig;

/// Checkpoint artifact: the generated DFG set (`lisa-dfg-set v1`).
pub const DFGS_FILE: &str = "dfgs.lisa-dfg";
/// Checkpoint artifact: the labelled dataset (`lisa-dataset v1`),
/// flushed one entry at a time.
pub const DATASET_FILE: &str = "labels.lisa-dataset";
/// Checkpoint artifact: the trained model (`lisa-model v1`).
pub const MODEL_FILE: &str = "model.lisa-model";

/// The five stages of the training pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Synthetic DFG generation (§V-A).
    GenerateDfgs,
    /// Iterative label generation (§V-B).
    GenerateLabels,
    /// Quality filter and train/holdout split (§V-C).
    FilterAndSplit,
    /// GNN training (§IV-B, §VI-B).
    TrainNets,
    /// Table II holdout evaluation.
    Evaluate,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 5] = [
        Stage::GenerateDfgs,
        Stage::GenerateLabels,
        Stage::FilterAndSplit,
        Stage::TrainNets,
        Stage::Evaluate,
    ];

    /// Stable snake_case name, used in stage events and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Stage::GenerateDfgs => "generate_dfgs",
            Stage::GenerateLabels => "generate_labels",
            Stage::FilterAndSplit => "filter_and_split",
            Stage::TrainNets => "train_nets",
            Stage::Evaluate => "evaluate",
        }
    }

    /// Parses a stage name; accepts the canonical [`Stage::name`] plus a
    /// short alias (`dfgs`, `labels`, `filter`, `train`, `eval`).
    pub fn from_name(s: &str) -> Option<Stage> {
        match s {
            "generate_dfgs" | "dfgs" => Some(Stage::GenerateDfgs),
            "generate_labels" | "labels" => Some(Stage::GenerateLabels),
            "filter_and_split" | "filter" => Some(Stage::FilterAndSplit),
            "train_nets" | "train" => Some(Stage::TrainNets),
            "evaluate" | "eval" => Some(Stage::Evaluate),
            _ => None,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a training run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainError {
    /// No labelled DFG survived the §V-C filter — there is nothing to
    /// train on. Carries the counts so callers can suggest a fix
    /// (more DFGs, looser filter, bigger fabric).
    EmptyDataset {
        /// DFGs generated in total.
        generated: usize,
        /// DFGs that produced labels at all (before the filter).
        labelled: usize,
    },
    /// A checkpoint file could not be read or written.
    Io(io::Error),
    /// The dataset checkpoint's header was unreadable (lenient recovery
    /// only requires the three header lines).
    Dataset(DatasetParseError),
    /// The checkpoint disagrees with this run's configuration, so
    /// resuming from it would silently produce a different model.
    ResumeMismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset {
                generated,
                labelled,
            } => write!(
                f,
                "no labelled DFG survived the filter ({labelled} of {generated} generated DFGs \
                 were labelled); generate more DFGs, loosen the filter, or enlarge the fabric"
            ),
            TrainError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            TrainError::Dataset(e) => write!(f, "dataset checkpoint: {e}"),
            TrainError::ResumeMismatch { reason } => {
                write!(f, "checkpoint does not match this configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Io(e) => Some(e),
            TrainError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TrainError {
    fn from(e: io::Error) -> Self {
        TrainError::Io(e)
    }
}

impl From<DatasetParseError> for TrainError {
    fn from(e: DatasetParseError) -> Self {
        TrainError::Dataset(e)
    }
}

/// The staged training pipeline. [`Lisa::train_for`] is a thin wrapper
/// over `Pipeline::new(acc, config).run()`; build one directly to attach
/// an observer, checkpoint/resume through a directory, or stop after an
/// intermediate stage.
///
/// # Example
///
/// ```no_run
/// use lisa_arch::Accelerator;
/// use lisa_core::{LisaConfig, Pipeline};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let acc = Accelerator::cgra("4x4", 4, 4);
/// let lisa = Pipeline::new(&acc, LisaConfig::fast())
///     .with_checkpoint_dir("checkpoints/4x4")
///     .run()?
///     .expect("no stop_after configured");
/// println!("accuracy: {:?}", lisa.stats().accuracy);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pipeline<'a> {
    acc: &'a Accelerator,
    config: LisaConfig,
    sink: EventSink,
    checkpoint: Option<PathBuf>,
    stop_after: Option<Stage>,
}

impl<'a> Pipeline<'a> {
    /// A pipeline with no observer and no checkpointing — exactly the
    /// behaviour of [`Lisa::train_for`].
    pub fn new(acc: &'a Accelerator, config: LisaConfig) -> Self {
        Pipeline {
            acc,
            config,
            sink: EventSink::null(),
            checkpoint: None,
            stop_after: None,
        }
    }

    /// Streams [`PipelineEvent`]s to `sink` (threaded down into the label
    /// generator, the annealer, and the GNN training loops). Events are
    /// pure observations: the trained model is identical with any sink.
    pub fn with_observer(mut self, sink: EventSink) -> Self {
        self.sink = sink;
        self
    }

    /// Persists stage artifacts under `dir` (created on demand) and
    /// resumes label generation from a recoverable [`DATASET_FILE`]
    /// prefix left by an earlier (possibly killed) run.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(dir.into());
        self
    }

    /// Stops after `stage` completes (and its artifact is flushed);
    /// [`Pipeline::run`] then returns `Ok(None)`. Used to checkpoint the
    /// expensive label-generation step on its own.
    pub fn stop_after(mut self, stage: Stage) -> Self {
        self.stop_after = Some(stage);
        self
    }

    /// Runs the stages in order. Returns `Ok(None)` when a
    /// [`Pipeline::stop_after`] bound ended the run early, otherwise the
    /// trained [`Lisa`].
    ///
    /// # Errors
    ///
    /// [`TrainError::EmptyDataset`] when nothing survives the filter;
    /// I/O, parse, and mismatch errors from checkpointing and resume.
    pub fn run(self) -> Result<Option<Lisa>, TrainError> {
        let dfgs = self.timed(Stage::GenerateDfgs, || self.generate_dfgs())?;
        if self.stop_after == Some(Stage::GenerateDfgs) {
            return Ok(None);
        }
        let entries = self.timed(Stage::GenerateLabels, || self.generate_labels(&dfgs))?;
        if self.stop_after == Some(Stage::GenerateLabels) {
            return Ok(None);
        }
        let split = self.timed(Stage::FilterAndSplit, || self.filter_and_split(&entries))?;
        if self.stop_after == Some(Stage::FilterAndSplit) {
            return Ok(None);
        }
        let nets = self.timed(Stage::TrainNets, || Ok(self.train_nets(&split.train)))?;
        if self.stop_after == Some(Stage::TrainNets) {
            return Ok(None);
        }
        let lisa = self.timed(Stage::Evaluate, || self.evaluate(dfgs.len(), &split, nets))?;
        Ok(Some(lisa))
    }

    /// Runs one stage body between its started/finished events.
    fn timed<T>(
        &self,
        stage: Stage,
        body: impl FnOnce() -> Result<T, TrainError>,
    ) -> Result<T, TrainError> {
        self.sink.emit(PipelineEvent::StageStarted {
            stage: stage.name(),
        });
        let started = Instant::now();
        let out = body()?;
        self.sink.emit(PipelineEvent::StageFinished {
            stage: stage.name(),
            duration: started.elapsed(),
        });
        Ok(out)
    }

    /// Stage 1: raw DFG generation (§V-A).
    fn generate_dfgs(&self) -> Result<Vec<Dfg>, TrainError> {
        let dfgs = random::generate_dataset(
            &self.config.dfg,
            self.config.seed,
            self.config.training_dfgs,
        );
        if self.sink.is_active() {
            for (index, dfg) in dfgs.iter().enumerate() {
                self.sink.emit(PipelineEvent::DfgGenerated {
                    index,
                    nodes: dfg.node_count(),
                    edges: dfg.edge_count(),
                });
            }
        }
        if let Some(dir) = &self.checkpoint {
            fs::create_dir_all(dir)?;
            fs::write(dir.join(DFGS_FILE), dfg_text::write_dfg_set(&dfgs))?;
        }
        Ok(dfgs)
    }

    /// Stage 2: iterative label generation with incremental
    /// checkpointing and resume.
    ///
    /// DFGs are processed in index-ordered chunks of `parallelism`
    /// (each chunk fanned out via the deterministic `par_map`), and each
    /// finished entry is appended and flushed before the next chunk
    /// starts — the checkpoint granularity. Per-DFG generation is
    /// independent and seeded per DFG index via the config, so chunking
    /// and thread count never change the entries.
    fn generate_labels(&self, dfgs: &[Dfg]) -> Result<Vec<DatasetEntry>, TrainError> {
        let mut entries: Vec<DatasetEntry> = Vec::new();
        let mut writer = None;
        if let Some(dir) = &self.checkpoint {
            fs::create_dir_all(dir)?;
            let path = dir.join(DATASET_FILE);
            entries = self.recover_entries(&path, dfgs)?;
            // Reopen crash-safely: truncate only the torn tail in place,
            // or atomically replace via tmp+rename — never truncate and
            // re-append, which would destroy the checkpoint if this run
            // were killed mid-rewrite.
            writer = Some(DatasetWriter::resume(
                &path,
                self.acc.name(),
                dfgs.len(),
                &entries,
            )?);
        }
        if self.sink.is_active() {
            for (dfg_index, entry) in entries.iter().enumerate() {
                self.sink.emit(PipelineEvent::LabelGenFinished {
                    dfg_index,
                    result: entry_result(entry),
                    resumed: true,
                });
            }
        }
        let chunk = self.config.parallelism.max(1);
        while entries.len() < dfgs.len() {
            let start = entries.len();
            let end = (start + chunk).min(dfgs.len());
            let batch: Vec<(usize, Dfg)> = (start..end).map(|i| (i, dfgs[i].clone())).collect();
            let produced =
                lisa_mapper::portfolio::par_map(self.config.parallelism, batch, |_, (i, dfg)| {
                    let outcome =
                        generate_labels_with(&dfg, self.acc, &self.config.iter_gen, i, &self.sink);
                    DatasetEntry { dfg, outcome }
                });
            for entry in produced {
                if let Some(w) = &mut writer {
                    w.append(&entry)?;
                }
                entries.push(entry);
            }
        }
        Ok(entries)
    }

    /// Parses a (possibly truncated) dataset checkpoint and verifies it
    /// against this run's configuration: the accelerator name, the
    /// planned entry count, and every recovered DFG must match what the
    /// run would generate itself.
    fn recover_entries(&self, path: &Path, dfgs: &[Dfg]) -> Result<Vec<DatasetEntry>, TrainError> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let recovered = dataset::parse_dataset_partial(&text)?;
        if recovered.accelerator != self.acc.name() {
            return Err(TrainError::ResumeMismatch {
                reason: format!(
                    "checkpoint targets accelerator `{}`, this run targets `{}`",
                    recovered.accelerator,
                    self.acc.name()
                ),
            });
        }
        if recovered.declared_count != dfgs.len() || recovered.entries.len() > dfgs.len() {
            return Err(TrainError::ResumeMismatch {
                reason: format!(
                    "checkpoint plans {} entries ({} present), this run generates {}",
                    recovered.declared_count,
                    recovered.entries.len(),
                    dfgs.len()
                ),
            });
        }
        for (i, entry) in recovered.entries.iter().enumerate() {
            if entry.dfg != dfgs[i] {
                return Err(TrainError::ResumeMismatch {
                    reason: format!(
                        "entry {i}'s DFG differs from the regenerated DFG \
                         (different dfg config or seed?)"
                    ),
                });
            }
        }
        Ok(recovered.entries)
    }

    /// Stage 3: the §V-C filter and the train/holdout split.
    fn filter_and_split(&self, entries: &[DatasetEntry]) -> Result<SplitSets, TrainError> {
        let mut labelled: Vec<(&Dfg, &GuidanceLabels)> = Vec::new();
        let mut labelled_count = 0;
        for (dfg_index, entry) in entries.iter().enumerate() {
            let Some(generated) = &entry.outcome else {
                continue;
            };
            labelled_count += 1;
            let accepted = filter::accept(generated, &self.config.filter);
            if self.sink.is_active() {
                self.sink.emit(PipelineEvent::FilterDecision {
                    dfg_index,
                    accepted,
                    quality: filter::quality(generated, &self.config.filter),
                });
            }
            if accepted {
                labelled.push((&entry.dfg, &generated.labels));
            }
        }
        if labelled.is_empty() {
            return Err(TrainError::EmptyDataset {
                generated: entries.len(),
                labelled: labelled_count,
            });
        }

        // Split by graph, so no leakage between sample types.
        let holdout_len = ((labelled.len() as f64) * self.config.holdout_fraction).round() as usize;
        let holdout_len = holdout_len.min(labelled.len().saturating_sub(1));
        let (train_graphs, holdout_graphs) = labelled.split_at(labelled.len() - holdout_len);

        let mut train = TrainingSet::new();
        for (dfg, labels) in train_graphs {
            train.push(dfg, labels);
        }
        let mut holdout = TrainingSet::new();
        for (dfg, labels) in holdout_graphs {
            holdout.push(dfg, labels);
        }
        Ok(SplitSets {
            train,
            holdout,
            labelled: labelled_count,
            kept: train_graphs.len() + holdout_graphs.len(),
            holdout_graphs: holdout_graphs.len(),
        })
    }

    /// Stage 4: the four label networks (§IV-B, §VI-B). The framework's
    /// worker budget also drives the deterministic parallel gradient loop
    /// inside each network (bit-identical for any value).
    fn train_nets(&self, train_set: &TrainingSet) -> TrainedNets {
        let train_cfg = lisa_gnn::TrainConfig {
            parallelism: self.config.parallelism.max(1),
            ..self.config.train
        };
        let seed = self.config.seed;
        let mut schedule_net = ScheduleOrderNet::new(NODE_ATTR_DIM, seed ^ 0x1);
        let mut same_level_net = EdgeMlp::new(DUMMY_ATTR_DIM, seed ^ 0x2);
        let mut spatial_net = SpatialNet::new(EDGE_ATTR_DIM, seed ^ 0x3);
        let mut temporal_net = EdgeMlp::new(EDGE_ATTR_DIM, seed ^ 0x4);

        let r1 = schedule_net.train_observed(
            &train_set.node_graphs,
            &train_cfg,
            "schedule_order",
            &self.sink,
        );
        let r2 = same_level_net.train_observed(
            &train_set.same_level,
            &train_cfg,
            "same_level",
            &self.sink,
        );
        let r3 = spatial_net.train_observed(&train_set.spatial, &train_cfg, "spatial", &self.sink);
        let r4 =
            temporal_net.train_observed(&train_set.temporal, &train_cfg, "temporal", &self.sink);

        TrainedNets {
            schedule_net,
            same_level_net,
            spatial_net,
            temporal_net,
            // A non-finite loss (empty split, diverged net) records as
            // None so it renders "n/a" instead of leaking NaN into tables.
            final_losses: [
                finite(r1.final_loss()),
                finite(r2.final_loss()),
                finite(r3.final_loss()),
                finite(r4.final_loss()),
            ],
        }
    }

    /// Stage 5: the Table II holdout accuracy, the final [`Lisa`]
    /// assembly, and the model artifact.
    fn evaluate(
        &self,
        dfgs_generated: usize,
        split: &SplitSets,
        nets: TrainedNets,
    ) -> Result<Lisa, TrainError> {
        let eval_set = if split.holdout.is_empty() {
            &split.train
        } else {
            &split.holdout
        };
        let accuracy = evaluate_accuracy(
            &nets.schedule_net,
            &nets.same_level_net,
            &nets.spatial_net,
            &nets.temporal_net,
            eval_set,
        );
        let stats = TrainingStats {
            dfgs_generated,
            dfgs_labelled: split.labelled,
            dfgs_kept: split.kept,
            dfgs_holdout: split.holdout_graphs,
            final_losses: nets.final_losses,
            accuracy,
        };
        let lisa = Lisa::from_parts(
            self.acc.name().to_string(),
            self.config.clone(),
            nets.schedule_net,
            nets.same_level_net,
            nets.spatial_net,
            nets.temporal_net,
            stats,
        );
        if let Some(dir) = &self.checkpoint {
            fs::create_dir_all(dir)?;
            fs::write(dir.join(MODEL_FILE), lisa.export_model())?;
        }
        Ok(lisa)
    }
}

/// Output of [`Stage::FilterAndSplit`].
struct SplitSets {
    train: TrainingSet,
    holdout: TrainingSet,
    labelled: usize,
    kept: usize,
    holdout_graphs: usize,
}

/// Output of [`Stage::TrainNets`].
struct TrainedNets {
    schedule_net: ScheduleOrderNet,
    same_level_net: EdgeMlp,
    spatial_net: SpatialNet,
    temporal_net: EdgeMlp,
    final_losses: [Option<f64>; 4],
}

/// Keeps a measured, finite metric; maps NaN/inf to "no data".
fn finite(v: f64) -> Option<f64> {
    v.is_finite().then_some(v)
}

/// The [`LabelGenResult`] summarising one dataset entry.
fn entry_result(entry: &DatasetEntry) -> LabelGenResult {
    match &entry.outcome {
        Some(g) => LabelGenResult::Mapped {
            best_ii: g.best_ii,
            mii: g.mii,
            candidates: g.candidate_count,
        },
        None => LabelGenResult::Unmappable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert_eq!(format!("{stage}"), stage.name());
        }
        assert_eq!(Stage::from_name("labels"), Some(Stage::GenerateLabels));
        assert_eq!(Stage::from_name("eval"), Some(Stage::Evaluate));
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn stages_are_ordered() {
        for pair in Stage::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn train_error_messages_are_actionable() {
        let e = TrainError::EmptyDataset {
            generated: 12,
            labelled: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("3 of 12"), "{msg}");
        let m = TrainError::ResumeMismatch {
            reason: "x".to_string(),
        };
        assert!(m.to_string().contains("does not match"), "{m}");
    }
}
