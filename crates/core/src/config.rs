//! End-to-end configuration of the LISA framework.

use lisa_dfg::RandomDfgConfig;
use lisa_gnn::TrainConfig;
use lisa_labels::{FilterConfig, IterGenConfig};
use lisa_mapper::{SaParams, StrategySpec};

/// Configuration of the full train-for-accelerator pipeline (paper Fig. 2:
/// training-data generation → GNN training → label-aware mapping).
#[derive(Debug, Clone, PartialEq)]
pub struct LisaConfig {
    /// Number of synthetic DFGs generated for training (paper: 1,000 per
    /// accelerator; the default here is CI-scale — see DESIGN.md
    /// "Substitutions").
    pub training_dfgs: usize,
    /// Shape of the synthetic DFGs (§V-A).
    pub dfg: RandomDfgConfig,
    /// Iterative label-generation budget (§V-B).
    pub iter_gen: IterGenConfig,
    /// Label quality filter (§V-C).
    pub filter: FilterConfig,
    /// GNN training recipe (§VI-B).
    pub train: TrainConfig,
    /// Fraction of labelled DFGs held out for the Table II accuracy
    /// evaluation (by graph, so no leakage between sample types).
    pub holdout_fraction: f64,
    /// Annealer parameters used at inference time (the final label-aware
    /// mapping of new DFGs).
    pub sa: SaParams,
    /// Lane mix of the inference-time mapping portfolio. The default
    /// (`Homogeneous(Sa)`) races homogeneous annealing chains exactly as
    /// the pre-strategy framework did; `mixed` adds the constructive
    /// fast path and an evolutionary lane (see
    /// [`StrategySpec::parse`]).
    pub strategy: StrategySpec,
    /// Worker threads for the deterministic parallel stages: fans the
    /// training-data generation out across DFGs, the GNN gradient loop
    /// out across micro-batches ([`TrainConfig::parallelism`] is set
    /// from this in `Lisa::train_for`), and the inference-time II search
    /// out across speculative IIs. Results are byte-identical for every
    /// value; `1` executes exactly the historical sequential code path.
    /// Defaults to the machine's available parallelism.
    pub parallelism: usize,
    /// Master seed; all stages derive their seeds from it.
    pub seed: u64,
    /// Path of a serialised movement predictor (`lisa-movement-predictor
    /// v1`) to gate the annealer's router with; `None` maps exactly as
    /// the pre-filter binary did. Loaded by
    /// [`Lisa::load_movement_filter`](crate::Lisa::load_movement_filter).
    pub predictor: Option<std::path::PathBuf>,
}

impl Default for LisaConfig {
    fn default() -> Self {
        LisaConfig {
            training_dfgs: 160,
            dfg: RandomDfgConfig::default(),
            iter_gen: IterGenConfig::default(),
            filter: FilterConfig::default(),
            train: TrainConfig::paper(),
            holdout_fraction: 0.2,
            sa: SaParams::paper(),
            strategy: StrategySpec::default(),
            parallelism: lisa_mapper::portfolio::available_parallelism(),
            seed: 2022,
            predictor: None,
        }
    }
}

impl LisaConfig {
    /// Drastically reduced pipeline for unit tests: few DFGs, short
    /// annealing, few epochs.
    pub fn fast() -> Self {
        LisaConfig {
            training_dfgs: 12,
            dfg: RandomDfgConfig {
                min_nodes: 6,
                max_nodes: 12,
                ..RandomDfgConfig::default()
            },
            iter_gen: IterGenConfig::fast(),
            train: TrainConfig {
                epochs: 25,
                ..TrainConfig::paper()
            },
            sa: SaParams::fast(),
            ..LisaConfig::default()
        }
    }

    /// Adjusts the synthetic-DFG generator for systolic targets (only
    /// systolic-supported operations).
    pub fn for_systolic(mut self) -> Self {
        self.dfg = RandomDfgConfig::systolic();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = LisaConfig::default();
        assert!(c.training_dfgs > 0);
        assert!(c.holdout_fraction > 0.0 && c.holdout_fraction < 1.0);
        assert_eq!(c.train.epochs, 500);
    }

    #[test]
    fn fast_is_smaller() {
        let c = LisaConfig::fast();
        assert!(c.training_dfgs < LisaConfig::default().training_dfgs);
        assert!(c.train.epochs < 500);
    }

    #[test]
    fn systolic_variant_restricts_ops() {
        let c = LisaConfig::fast().for_systolic();
        assert!(c.dfg.interior_ops.iter().all(|op| op.systolic_supported()));
    }
}
