//! Frozen inference for the four label networks.
//!
//! A trained [`crate::Lisa`] never mutates its networks again, so the
//! serving path can pay the tape overhead of `predict_with` exactly
//! once: [`CompiledModel::freeze`] lowers each network into a flat,
//! tape-free op sequence (`lisa-gnn`'s compiled plans) at construction
//! time. [`CompiledModel::predict`] then derives a DFG's labels with no
//! graph dispatch and no per-call parameter copies, bit-identical to
//! the tape path — the export/import round-trip tests pin that.

use lisa_dfg::Dfg;
use lisa_gnn::dataset::{ContextEdgeSample, NodeGraphSample};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};
use lisa_gnn::{CompiledEdgeMlp, CompiledScheduleOrder, CompiledSpatial, PlanScratch};
use lisa_labels::attributes::DfgAttributes;
use lisa_mapper::GuidanceLabels;

/// The four label networks frozen into compiled inference plans.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    schedule: CompiledScheduleOrder,
    same_level: CompiledEdgeMlp,
    spatial: CompiledSpatial,
    temporal: CompiledEdgeMlp,
}

impl CompiledModel {
    /// Snapshots the current weights of the four networks into plans.
    pub(crate) fn freeze(
        schedule: &ScheduleOrderNet,
        same_level: &EdgeMlp,
        spatial: &SpatialNet,
        temporal: &EdgeMlp,
    ) -> CompiledModel {
        CompiledModel {
            schedule: schedule.compile(),
            same_level: same_level.compile(),
            spatial: spatial.compile(),
            temporal: temporal.compile(),
        }
    }

    /// Derives the four guidance labels for a DFG (Fig. 2 right).
    ///
    /// Predictions are post-processed for mapper consumption: spatial
    /// distances are clamped to ≥ 0 and temporal distances to ≥ 1
    /// (causality).
    pub fn predict(&self, dfg: &Dfg) -> GuidanceLabels {
        // One warm scratch serves every prediction of this call; its
        // buffers are sized by the first prediction per shape and
        // reused thereafter.
        PlanScratch::with(|scratch| {
            let attrs = DfgAttributes::generate(dfg);
            let node_sample = NodeGraphSample {
                node_attrs: attrs.node.clone(),
                neighbors: DfgAttributes::adjacency(dfg),
                targets: vec![0.0; dfg.node_count()],
            };
            let schedule_order = self.schedule.predict(scratch, &node_sample);

            let same_level = attrs
                .dummy_edges
                .iter()
                .zip(&attrs.dummy)
                .map(|(d, a)| (d.a, d.b, self.same_level.predict(scratch, a).max(0.0)))
                .collect();

            let mut spatial = Vec::with_capacity(dfg.edge_count());
            let mut temporal = Vec::with_capacity(dfg.edge_count());
            for e in dfg.edge_ids() {
                let ctx = ContextEdgeSample {
                    attrs: attrs.edge[e.index()].clone(),
                    neighbor_attrs: attrs.edge_neighborhood(dfg, e),
                    target: 0.0,
                };
                let sp = self.spatial.predict(scratch, &ctx).max(0.0);
                // Physical consistency: a value moves at most one hop per
                // cycle, so the expected temporal distance can never be
                // below the expected spatial distance (extracted training
                // labels satisfy this by construction; predictions must
                // too).
                let tp = self
                    .temporal
                    .predict(scratch, &attrs.edge[e.index()])
                    .max(1.0)
                    .max(sp);
                spatial.push(sp);
                temporal.push(tp);
            }

            GuidanceLabels {
                schedule_order,
                same_level,
                spatial,
                temporal,
            }
        })
    }
}
