//! LISA: Learning-Induced mapping for Spatial Accelerators — the
//! end-to-end framework of the HPCA 2022 paper, reproduced in Rust.
//!
//! The pipeline (paper Fig. 2) has three parts:
//!
//! 1. **Training-data generation** — synthetic DFGs are labelled by an
//!    iterative partial-label-aware simulated-annealing loop and filtered
//!    for quality (`lisa-labels`).
//! 2. **GNN model construction** — four networks (one per label of
//!    Table I) are trained on the generated data (`lisa-gnn`).
//! 3. **Label-aware mapping** — for a new DFG, the trained networks derive
//!    labels in milliseconds, and a label-aware simulated annealer places
//!    and routes with a global view of the DFG structure (`lisa-mapper`).
//!
//! The central type is [`Lisa`]: train once per accelerator with
//! [`Lisa::train_for`], then call [`Lisa::map`] for every application DFG.
//!
//! # Quickstart
//!
//! ```
//! use lisa_arch::Accelerator;
//! use lisa_core::{Lisa, LisaConfig};
//! use lisa_dfg::polybench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let acc = Accelerator::cgra("4x4", 4, 4);
//! // `fast()` keeps this example snappy; use `LisaConfig::default()` for
//! // experiment-scale training.
//! let lisa = Lisa::train_for(&acc, &LisaConfig::fast())?;
//! let dfg = polybench::kernel("doitgen")?;
//! let (outcome, _mapping) = lisa.map_capped(&dfg, &acc, 8);
//! assert!(outcome.mapped());
//! # Ok(())
//! # }
//! ```
//!
//! Training is a staged [`Pipeline`] under the hood: build one directly
//! to stream progress events, checkpoint artifacts to a directory, and
//! resume an interrupted label-generation run.

use std::fmt;

mod compiled;
mod config;
mod framework;
mod model_io;
mod pipeline;
mod registry;
mod report;
pub mod request;

pub use compiled::CompiledModel;
pub use config::LisaConfig;
pub use framework::{Lisa, MovementFilterError};
pub use model_io::ModelImportError;
pub use pipeline::{Pipeline, Stage, TrainError, DATASET_FILE, DFGS_FILE, MODEL_FILE};
pub use registry::{ModelRegistry, RegistryError};
pub use report::{LabelAccuracy, TrainingStats};
pub use request::{MapRequest, RequestParseError};

/// Any failure the framework can produce: training or model import.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The training pipeline failed.
    Train(TrainError),
    /// A serialised model failed to import.
    ModelImport(ModelImportError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Train(e) => write!(f, "training failed: {e}"),
            Error::ModelImport(e) => write!(f, "model import failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Train(e) => Some(e),
            Error::ModelImport(e) => Some(e),
        }
    }
}

impl From<TrainError> for Error {
    fn from(e: TrainError) -> Self {
        Error::Train(e)
    }
}

impl From<ModelImportError> for Error {
    fn from(e: ModelImportError) -> Self {
        Error::ModelImport(e)
    }
}
