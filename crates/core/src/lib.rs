//! LISA: Learning-Induced mapping for Spatial Accelerators — the
//! end-to-end framework of the HPCA 2022 paper, reproduced in Rust.
//!
//! The pipeline (paper Fig. 2) has three parts:
//!
//! 1. **Training-data generation** — synthetic DFGs are labelled by an
//!    iterative partial-label-aware simulated-annealing loop and filtered
//!    for quality (`lisa-labels`).
//! 2. **GNN model construction** — four networks (one per label of
//!    Table I) are trained on the generated data (`lisa-gnn`).
//! 3. **Label-aware mapping** — for a new DFG, the trained networks derive
//!    labels in milliseconds, and a label-aware simulated annealer places
//!    and routes with a global view of the DFG structure (`lisa-mapper`).
//!
//! The central type is [`Lisa`]: train once per accelerator with
//! [`Lisa::train_for`], then call [`Lisa::map`] for every application DFG.
//!
//! # Quickstart
//!
//! ```
//! use lisa_arch::Accelerator;
//! use lisa_core::{Lisa, LisaConfig};
//! use lisa_dfg::polybench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let acc = Accelerator::cgra("4x4", 4, 4);
//! // `fast()` keeps this example snappy; use `LisaConfig::default()` for
//! // experiment-scale training.
//! let lisa = Lisa::train_for(&acc, &LisaConfig::fast());
//! let dfg = polybench::kernel("doitgen")?;
//! let (outcome, _mapping) = lisa.map_capped(&dfg, &acc, 8);
//! assert!(outcome.mapped());
//! # Ok(())
//! # }
//! ```

mod config;
mod framework;
mod model_io;
mod report;

pub use config::LisaConfig;
pub use framework::Lisa;
pub use model_io::ModelImportError;
pub use report::{LabelAccuracy, TrainingStats};
