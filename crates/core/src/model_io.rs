//! Whole-model persistence for a trained [`Lisa`](crate::Lisa) instance.
//!
//! Training is the one-off expensive step of the pipeline; deployments
//! persist the four networks' weights and reload them per compiler
//! invocation. The format wraps the four `lisa-gnn` parameter dumps in
//! named sections:
//!
//! ```text
//! lisa-model v1
//! accelerator <name>
//! === schedule_order ===
//! <lisa-gnn-params dump>
//! === same_level ===
//! ...
//! ```

use std::error::Error;
use std::fmt;

use lisa_gnn::io::ParseParamsError;

/// Errors produced while importing a serialised model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelImportError {
    /// Missing or wrong `lisa-model v1` header.
    BadHeader,
    /// Missing `accelerator <name>` line.
    MissingAccelerator,
    /// A network section is absent.
    MissingSection {
        /// Name of the missing section.
        section: &'static str,
    },
    /// A network's weights failed to parse.
    BadWeights {
        /// Which network.
        section: &'static str,
        /// Underlying parse error.
        source: ParseParamsError,
    },
}

impl fmt::Display for ModelImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelImportError::BadHeader => write!(f, "missing `lisa-model v1` header"),
            ModelImportError::MissingAccelerator => write!(f, "missing accelerator line"),
            ModelImportError::MissingSection { section } => {
                write!(f, "missing section {section}")
            }
            ModelImportError::BadWeights { section, source } => {
                write!(f, "bad weights in section {section}: {source}")
            }
        }
    }
}

impl Error for ModelImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelImportError::BadWeights { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) const SECTIONS: [&str; 4] = ["schedule_order", "same_level", "spatial", "temporal"];

/// Assembles the sectioned model text.
pub(crate) fn assemble(accelerator: &str, parts: [String; 4]) -> String {
    let mut out = format!("lisa-model v1\naccelerator {accelerator}\n");
    for (name, body) in SECTIONS.iter().zip(parts) {
        out.push_str(&format!("=== {name} ===\n"));
        out.push_str(&body);
        if !body.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Splits the sectioned model text back into the accelerator name and the
/// four parameter dumps.
pub(crate) fn disassemble(text: &str) -> Result<(String, [String; 4]), ModelImportError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("lisa-model v1") {
        return Err(ModelImportError::BadHeader);
    }
    let accelerator = lines
        .next()
        .and_then(|l| l.strip_prefix("accelerator "))
        .ok_or(ModelImportError::MissingAccelerator)?
        .trim()
        .to_string();

    let mut parts: [String; 4] = Default::default();
    let mut current: Option<usize> = None;
    for line in lines {
        if let Some(name) = line
            .strip_prefix("=== ")
            .and_then(|l| l.strip_suffix(" ==="))
        {
            current = SECTIONS.iter().position(|s| *s == name);
            continue;
        }
        if let Some(idx) = current {
            parts[idx].push_str(line);
            parts[idx].push('\n');
        }
    }
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            return Err(ModelImportError::MissingSection {
                section: SECTIONS[i],
            });
        }
    }
    Ok((accelerator, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_disassemble_roundtrip() {
        let parts = [
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
        ];
        let text = assemble("4x4", parts.clone());
        let (acc, got) = disassemble(&text).unwrap();
        assert_eq!(acc, "4x4");
        assert_eq!(got, parts);
    }

    #[test]
    fn header_checked() {
        assert_eq!(disassemble("oops\n"), Err(ModelImportError::BadHeader));
        assert_eq!(
            disassemble("lisa-model v1\nno-acc\n"),
            Err(ModelImportError::MissingAccelerator)
        );
    }

    #[test]
    fn missing_section_detected() {
        let text = "lisa-model v1\naccelerator x\n=== schedule_order ===\nabc\n";
        assert!(matches!(
            disassemble(text),
            Err(ModelImportError::MissingSection { .. })
        ));
    }
}
