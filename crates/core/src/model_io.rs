//! Whole-model persistence for a trained [`Lisa`](crate::Lisa) instance.
//!
//! Training is the one-off expensive step of the pipeline; deployments
//! persist the four networks' weights and reload them per compiler
//! invocation. The format wraps the four `lisa-gnn` parameter dumps in
//! named sections:
//!
//! ```text
//! lisa-model v1
//! accelerator <name>
//! === schedule_order ===
//! <lisa-gnn-params dump>
//! === same_level ===
//! ...
//! ```

use std::error::Error;
use std::fmt;

use lisa_gnn::io::ParseParamsError;

/// Errors produced while importing a serialised model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelImportError {
    /// Missing or wrong `lisa-model v1` header.
    BadHeader,
    /// Missing `accelerator <name>` line.
    MissingAccelerator,
    /// A network section is absent.
    MissingSection {
        /// Name of the missing section.
        section: &'static str,
    },
    /// A network's weights failed to parse.
    BadWeights {
        /// Which network.
        section: &'static str,
        /// Underlying parse error.
        source: ParseParamsError,
    },
    /// The same section header appeared twice — concatenating two weight
    /// dumps would corrupt the network silently.
    DuplicateSection {
        /// Name of the repeated section.
        section: &'static str,
    },
    /// A non-blank line outside any known section (before the first
    /// header, or under an unrecognised one).
    UnexpectedContent {
        /// The offending line, verbatim.
        line: String,
    },
}

impl fmt::Display for ModelImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelImportError::BadHeader => write!(f, "missing `lisa-model v1` header"),
            ModelImportError::MissingAccelerator => write!(f, "missing accelerator line"),
            ModelImportError::MissingSection { section } => {
                write!(f, "missing section {section}")
            }
            ModelImportError::BadWeights { section, source } => {
                write!(f, "bad weights in section {section}: {source}")
            }
            ModelImportError::DuplicateSection { section } => {
                write!(f, "section {section} appears twice")
            }
            ModelImportError::UnexpectedContent { line } => {
                write!(f, "unexpected content outside any section: `{line}`")
            }
        }
    }
}

impl Error for ModelImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelImportError::BadWeights { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) const SECTIONS: [&str; 4] = ["schedule_order", "same_level", "spatial", "temporal"];

/// Assembles the sectioned model text.
pub(crate) fn assemble(accelerator: &str, parts: [String; 4]) -> String {
    let mut out = format!("lisa-model v1\naccelerator {accelerator}\n");
    for (name, body) in SECTIONS.iter().zip(parts) {
        out.push_str(&format!("=== {name} ===\n"));
        out.push_str(&body);
        if !body.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Splits the sectioned model text back into the accelerator name and the
/// four parameter dumps.
pub(crate) fn disassemble(text: &str) -> Result<(String, [String; 4]), ModelImportError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("lisa-model v1") {
        return Err(ModelImportError::BadHeader);
    }
    let accelerator = lines
        .next()
        .and_then(|l| l.strip_prefix("accelerator "))
        .ok_or(ModelImportError::MissingAccelerator)?
        .trim()
        .to_string();

    let mut parts: [String; 4] = Default::default();
    let mut current: Option<usize> = None;
    let mut seen = [false; 4];
    for line in lines {
        if let Some(name) = line
            .strip_prefix("=== ")
            .and_then(|l| l.strip_suffix(" ==="))
        {
            let Some(idx) = SECTIONS.iter().position(|s| *s == name) else {
                return Err(ModelImportError::UnexpectedContent {
                    line: line.to_string(),
                });
            };
            if seen[idx] {
                return Err(ModelImportError::DuplicateSection {
                    section: SECTIONS[idx],
                });
            }
            seen[idx] = true;
            current = Some(idx);
            continue;
        }
        match current {
            Some(idx) => {
                parts[idx].push_str(line);
                parts[idx].push('\n');
            }
            // Blank lines between the accelerator line and the first
            // section are tolerated; anything else is a corrupt model.
            None if line.trim().is_empty() => {}
            None => {
                return Err(ModelImportError::UnexpectedContent {
                    line: line.to_string(),
                });
            }
        }
    }
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            return Err(ModelImportError::MissingSection {
                section: SECTIONS[i],
            });
        }
    }
    Ok((accelerator, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_disassemble_roundtrip() {
        let parts = [
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
            "lisa-gnn-params v1\ntensors 0\n".to_string(),
        ];
        let text = assemble("4x4", parts.clone());
        let (acc, got) = disassemble(&text).unwrap();
        assert_eq!(acc, "4x4");
        assert_eq!(got, parts);
    }

    #[test]
    fn header_checked() {
        assert_eq!(disassemble("oops\n"), Err(ModelImportError::BadHeader));
        assert_eq!(
            disassemble("lisa-model v1\nno-acc\n"),
            Err(ModelImportError::MissingAccelerator)
        );
    }

    #[test]
    fn missing_section_detected() {
        let text = "lisa-model v1\naccelerator x\n=== schedule_order ===\nabc\n";
        assert!(matches!(
            disassemble(text),
            Err(ModelImportError::MissingSection { .. })
        ));
    }

    fn valid_model() -> String {
        let parts: [String; 4] =
            std::array::from_fn(|_| "lisa-gnn-params v1\ntensors 0\n".to_string());
        assemble("4x4", parts)
    }

    #[test]
    fn duplicate_section_rejected() {
        let text = format!("{}=== spatial ===\nextra\n", valid_model());
        assert_eq!(
            disassemble(&text),
            Err(ModelImportError::DuplicateSection { section: "spatial" })
        );
    }

    #[test]
    fn pre_section_content_rejected() {
        let text = valid_model().replace(
            "=== schedule_order ===",
            "stray line\n=== schedule_order ===",
        );
        assert_eq!(
            disassemble(&text),
            Err(ModelImportError::UnexpectedContent {
                line: "stray line".to_string()
            })
        );
    }

    #[test]
    fn blank_pre_section_lines_tolerated() {
        let text = valid_model().replace("=== schedule_order ===", "\n   \n=== schedule_order ===");
        assert!(disassemble(&text).is_ok());
    }

    #[test]
    fn unknown_section_rejected() {
        let text = format!("{}=== mystery ===\nstuff\n", valid_model());
        assert_eq!(
            disassemble(&text),
            Err(ModelImportError::UnexpectedContent {
                line: "=== mystery ===".to_string()
            })
        );
    }

    #[test]
    fn error_messages_name_the_problem() {
        let dup = ModelImportError::DuplicateSection { section: "spatial" };
        assert!(dup.to_string().contains("twice"));
        let stray = ModelImportError::UnexpectedContent {
            line: "x".to_string(),
        };
        assert!(stray.to_string().contains('x'));
    }
}
