//! The `lisa-request v1` mapping-request format and its content hash.
//!
//! A serving daemon needs a *canonical* request representation: two
//! requests that mean the same mapping problem must hash to the same
//! cache key. The workspace's byte-exact text formats make this cheap —
//! a request is parsed into typed fields and re-serialized through the
//! same writers the checkpoint formats use, so formatting noise (CRLF,
//! trailing blank lines) never splits the cache.
//!
//! ```text
//! lisa-request v1
//! accelerator 4x4
//! seed 2022
//! max_ii 8
//! strategy sa
//! lisa-dfg v1
//! ...
//! end dfg
//! ```
//!
//! The cache key is the FNV-1a 64-bit hash of the canonical text. The
//! mapper itself is a deterministic pure function of
//! `(dfg, accelerator, config, seed)`, which is what makes
//! content-addressed response caching sound: equal keys imply
//! byte-identical responses.

use std::fmt;

use lisa_dfg::text::{parse_dfg_lines, write_dfg_into, ParseDfgError};
use lisa_dfg::Dfg;
use lisa_mapper::StrategySpec;

/// Header line opening every serialized request.
pub const REQUEST_HEADER: &str = "lisa-request v1";

/// A canonicalized mapping request: everything the deterministic mapper
/// needs, and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRequest {
    /// Catalog key of the target fabric (`Accelerator::standard`).
    pub accelerator: String,
    /// Annealer seed; part of the determinism contract, so part of the key.
    pub seed: u64,
    /// II-search cap.
    pub max_ii: u32,
    /// Lane mix of the mapping portfolio. Part of the determinism
    /// contract (it selects which search trajectories run), so part of
    /// the key. Documents without a `strategy` line parse as the
    /// default (`sa`), and `canonical_text` always writes the line, so
    /// legacy documents share the default's cache key.
    pub strategy: StrategySpec,
    /// The kernel to map.
    pub dfg: Dfg,
}

/// Why a `lisa-request v1` document failed to parse.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestParseError {
    /// The first line was not `lisa-request v1`.
    BadHeader,
    /// A field line did not match its expected shape.
    BadLine {
        /// The offending line, verbatim.
        line: String,
    },
    /// The document ended before the embedded DFG.
    UnexpectedEof,
    /// Non-blank content followed the DFG block.
    TrailingContent {
        /// The first trailing line.
        line: String,
    },
    /// The `strategy` line named an unknown lane mix.
    Strategy(lisa_mapper::ParseStrategyError),
    /// The embedded `lisa-dfg v1` block was malformed.
    Dfg(ParseDfgError),
}

impl fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestParseError::BadHeader => write!(f, "expected `{REQUEST_HEADER}` header"),
            RequestParseError::BadLine { line } => write!(f, "malformed request line `{line}`"),
            RequestParseError::UnexpectedEof => write!(f, "request ended unexpectedly"),
            RequestParseError::TrailingContent { line } => {
                write!(f, "trailing content after request: `{line}`")
            }
            RequestParseError::Strategy(e) => write!(f, "strategy field: {e}"),
            RequestParseError::Dfg(e) => write!(f, "embedded DFG: {e}"),
        }
    }
}

impl std::error::Error for RequestParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestParseError::Strategy(e) => Some(e),
            RequestParseError::Dfg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseDfgError> for RequestParseError {
    fn from(e: ParseDfgError) -> Self {
        RequestParseError::Dfg(e)
    }
}

impl MapRequest {
    /// Serializes the request in canonical form: fixed field order, one
    /// trailing newline, floats (inside the DFG block) in
    /// shortest-round-trip form. `parse` ∘ `canonical_text` is the
    /// identity, and `canonical_text` ∘ `parse` is idempotent — the
    /// properties the cache key relies on.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        out.push_str(REQUEST_HEADER);
        out.push('\n');
        out.push_str(&format!("accelerator {}\n", self.accelerator));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("max_ii {}\n", self.max_ii));
        out.push_str(&format!("strategy {}\n", self.strategy));
        write_dfg_into(&mut out, &self.dfg);
        out
    }

    /// Parses a request document. Lines are CRLF-tolerant and trailing
    /// blank lines are ignored, so transport framing variations
    /// canonicalize away.
    ///
    /// # Errors
    ///
    /// Returns a [`RequestParseError`] describing the first problem.
    pub fn parse(text: &str) -> Result<MapRequest, RequestParseError> {
        let mut lines = text.lines().map(|l| l.trim_end_matches('\r'));
        let header = lines.next().ok_or(RequestParseError::UnexpectedEof)?;
        if header.trim_end() != REQUEST_HEADER {
            return Err(RequestParseError::BadHeader);
        }
        let accelerator = field(&mut lines, "accelerator ")?.to_string();
        let seed = field(&mut lines, "seed ")?;
        let seed: u64 = seed.parse().map_err(|_| RequestParseError::BadLine {
            line: format!("seed {seed}"),
        })?;
        let max_ii = field(&mut lines, "max_ii ")?;
        let max_ii: u32 = max_ii.parse().map_err(|_| RequestParseError::BadLine {
            line: format!("max_ii {max_ii}"),
        })?;
        // The strategy line is optional for back-compat: pre-strategy
        // documents parse as the default lane mix, and because
        // `canonical_text` always writes the line, they share the
        // explicit default's cache key.
        let mut lines = lines.peekable();
        let strategy = match lines.peek().and_then(|l| l.strip_prefix("strategy ")) {
            Some(spec) => {
                let spec = StrategySpec::parse(spec).map_err(RequestParseError::Strategy)?;
                lines.next();
                spec
            }
            None => StrategySpec::default(),
        };
        let dfg = parse_dfg_lines(&mut lines)?;
        if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
            return Err(RequestParseError::TrailingContent {
                line: extra.to_string(),
            });
        }
        Ok(MapRequest {
            accelerator,
            seed,
            max_ii,
            strategy,
            dfg,
        })
    }

    /// The content-addressed cache key: FNV-1a 64 over the canonical text.
    pub fn cache_key(&self) -> u64 {
        fnv1a64(self.canonical_text().as_bytes())
    }

    /// Hex form of [`Self::cache_key`], used for on-disk cache filenames.
    pub fn cache_key_hex(&self) -> String {
        format!("{:016x}", self.cache_key())
    }
}

fn field<'a, I>(lines: &mut I, prefix: &str) -> Result<&'a str, RequestParseError>
where
    I: Iterator<Item = &'a str>,
{
    let line = lines.next().ok_or(RequestParseError::UnexpectedEof)?;
    line.strip_prefix(prefix)
        .ok_or_else(|| RequestParseError::BadLine {
            line: line.to_string(),
        })
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a content-addressed cache filename needs. (Not
/// collision-resistant against adversaries; the daemon trusts its
/// clients.)
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    fn sample() -> MapRequest {
        MapRequest {
            accelerator: "4x4".to_string(),
            seed: 2022,
            max_ii: 8,
            strategy: StrategySpec::default(),
            dfg: polybench::kernel("gemm").unwrap(),
        }
    }

    #[test]
    fn canonical_text_round_trips() {
        let req = sample();
        let text = req.canonical_text();
        let parsed = MapRequest::parse(&text).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(
            parsed.canonical_text(),
            text,
            "canonical form is a fixpoint"
        );
    }

    #[test]
    fn formatting_noise_canonicalizes_away() {
        let req = sample();
        let noisy = format!("{}\r\n\n\n", req.canonical_text().replace('\n', "\r\n"));
        let parsed = MapRequest::parse(&noisy).unwrap();
        assert_eq!(parsed.cache_key(), req.cache_key());
    }

    #[test]
    fn key_separates_every_field() {
        let base = sample();
        let mut seed = base.clone();
        seed.seed = 7;
        let mut cap = base.clone();
        cap.max_ii = 4;
        let mut acc = base.clone();
        acc.accelerator = "8x8".to_string();
        let mut dfg = base.clone();
        dfg.dfg = polybench::kernel("mvt").unwrap();
        let mut strat = base.clone();
        strat.strategy = StrategySpec::parse("mixed").unwrap();
        let keys = [
            base.cache_key(),
            seed.cache_key(),
            cap.cache_key(),
            acc.cache_key(),
            dfg.cache_key(),
            strat.cache_key(),
        ];
        let mut unique = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "field change did not change key");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(matches!(
            MapRequest::parse("nope"),
            Err(RequestParseError::BadHeader)
        ));
        assert!(matches!(
            MapRequest::parse("lisa-request v1\nseed 1\n"),
            Err(RequestParseError::BadLine { .. })
        ));
        let mut text = sample().canonical_text();
        text.push_str("junk\n");
        assert!(matches!(
            MapRequest::parse(&text),
            Err(RequestParseError::TrailingContent { .. })
        ));
        assert!(matches!(
            MapRequest::parse("lisa-request v1\naccelerator 4x4\nseed 1\nmax_ii 8\n"),
            Err(RequestParseError::Dfg(_))
        ));
        assert!(matches!(
            MapRequest::parse(
                "lisa-request v1\naccelerator 4x4\nseed 1\nmax_ii 8\nstrategy warp\n"
            ),
            Err(RequestParseError::Strategy(_))
        ));
    }

    #[test]
    fn strategy_line_is_optional_and_aliases_share_a_key() {
        let base = sample();
        // A pre-strategy document (no `strategy` line) parses as the
        // default and lands on the same key as the explicit default.
        let legacy = base.canonical_text().replace("strategy sa\n", "");
        let parsed = MapRequest::parse(&legacy).unwrap();
        assert_eq!(parsed, base);
        assert_eq!(parsed.cache_key(), base.cache_key());
        // Alias spellings of the same mix canonicalize to one key.
        let mut evo = base.clone();
        evo.strategy = StrategySpec::parse("evo").unwrap();
        let mut evolutionary = base.clone();
        evolutionary.strategy = StrategySpec::parse("evolutionary").unwrap();
        assert_eq!(evo.cache_key(), evolutionary.cache_key());
        let mut mixed = base.clone();
        mixed.strategy = StrategySpec::parse("mixed").unwrap();
        let mut listed = base.clone();
        listed.strategy = StrategySpec::parse("constructive,sa,evolutionary").unwrap();
        assert_eq!(mixed.cache_key(), listed.cache_key());
        assert_ne!(mixed.cache_key(), base.cache_key());
    }
}
