//! Warm model registry for the serving daemon.
//!
//! Each `lisa-model v1` artifact is imported once at startup and shared
//! read-only behind an `Arc` — [`crate::Lisa`]'s inference and mapping
//! entry points take `&self`, so one resident model serves any number of
//! concurrent requests without cloning the networks. Import also freezes
//! the networks into [`crate::CompiledModel`] plans, so every label
//! prediction a resident model serves is tape-free from the first
//! request.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::{Lisa, LisaConfig, ModelImportError};

/// Trained models keyed by the accelerator name they were trained for.
///
/// Ordered storage (DET001): the registry's key iteration feeds
/// [`ModelRegistry::accelerators`], which reaches daemon output, so the
/// map must not depend on per-process hash seeding.
#[derive(Debug, Default, Clone)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<Lisa>>,
}

/// Why loading a model into the registry failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// Reading a file or directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A model file failed to import.
    Import {
        /// The offending file.
        path: PathBuf,
        /// The underlying error.
        source: ModelImportError,
    },
    /// Two files provide a model for the same accelerator.
    Duplicate {
        /// The contested accelerator name.
        accelerator: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, source } => {
                write!(f, "reading {}: {source}", path.display())
            }
            RegistryError::Import { path, source } => {
                write!(f, "importing {}: {source}", path.display())
            }
            RegistryError::Duplicate { accelerator } => {
                write!(f, "duplicate model for accelerator `{accelerator}`")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io { source, .. } => Some(source),
            RegistryError::Import { source, .. } => Some(source),
            RegistryError::Duplicate { .. } => None,
        }
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers an already-constructed model under its accelerator name.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the accelerator already has a model.
    pub fn insert(&mut self, lisa: Lisa) -> Result<(), RegistryError> {
        let name = lisa.accelerator_name().to_string();
        if self.models.contains_key(&name) {
            return Err(RegistryError::Duplicate { accelerator: name });
        }
        self.models.insert(name, Arc::new(lisa));
        Ok(())
    }

    /// Imports one `lisa-model v1` file. The config supplies the
    /// inference-time annealer parameters (it is not persisted with the
    /// weights).
    ///
    /// # Errors
    ///
    /// I/O, import, and duplicate failures, each naming the file.
    pub fn load_file(&mut self, path: &Path, config: &LisaConfig) -> Result<(), RegistryError> {
        let text = fs::read_to_string(path).map_err(|source| RegistryError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let lisa = Lisa::import_model(config, &text).map_err(|source| RegistryError::Import {
            path: path.to_path_buf(),
            source,
        })?;
        self.insert(lisa)
    }

    /// Imports every `*.model` / `*.lisa-model` file in a directory, in
    /// filename order (deterministic load order ⇒ deterministic duplicate
    /// reporting).
    ///
    /// # Errors
    ///
    /// Propagates the first file that fails.
    pub fn load_dir(&mut self, dir: &Path, config: &LisaConfig) -> Result<usize, RegistryError> {
        let entries = fs::read_dir(dir).map_err(|source| RegistryError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("model" | "lisa-model")
                )
            })
            .collect();
        paths.sort();
        for path in &paths {
            self.load_file(path, config)?;
        }
        Ok(paths.len())
    }

    /// The model trained for `accelerator`, if resident.
    pub fn get(&self, accelerator: &str) -> Option<Arc<Lisa>> {
        self.models.get(accelerator).cloned()
    }

    /// Accelerator names with a resident model, sorted (the `BTreeMap`
    /// already iterates in key order).
    pub fn accelerators(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is resident.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::Accelerator;

    fn tiny_model() -> Lisa {
        let acc = Accelerator::cgra("3x3", 3, 3);
        let config = LisaConfig {
            training_dfgs: 4,
            ..LisaConfig::fast()
        };
        Lisa::train_for(&acc, &config).unwrap()
    }

    #[test]
    fn file_roundtrip_and_duplicate_detection() {
        let model = tiny_model();
        let dir = std::env::temp_dir().join("lisa_registry_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.model"), model.export_model()).unwrap();
        fs::write(dir.join("ignored.txt"), "not a model").unwrap();

        let mut reg = ModelRegistry::new();
        let loaded = reg.load_dir(&dir, &LisaConfig::fast()).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(reg.accelerators(), ["3x3"]);
        let resident = reg.get("3x3").expect("model resident");
        assert_eq!(resident.accelerator_name(), "3x3");
        assert!(reg.get("4x4").is_none());

        let err = reg.insert(model).unwrap_err();
        assert!(matches!(err, RegistryError::Duplicate { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_shares_one_model_across_clones() {
        let mut reg = ModelRegistry::new();
        reg.insert(tiny_model()).unwrap();
        let a = reg.get("3x3").unwrap();
        let b = reg.get("3x3").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "get must share, not clone");
    }
}
