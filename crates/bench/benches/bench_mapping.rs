//! Benches for the three mappers — the kernel behind the compilation-time
//! comparison of Fig. 11. Mapper runs take seconds, so they register as
//! heavy benches: fewer samples, skipped in `cargo test` smoke mode.

use lisa_arch::Accelerator;
use lisa_bench::timing::Suite;
use lisa_dfg::polybench;
use lisa_mapper::exact::{ExactMapper, ExactParams};
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaMapper, SaParams};

fn main() {
    let mut suite = Suite::from_args("mapping");
    let acc = Accelerator::cgra("4x4", 4, 4);
    let search = IiSearch { max_ii: Some(10) };

    for name in ["doitgen", "gemm", "mvt"] {
        let dfg = polybench::kernel(name).unwrap();
        let mut seed = 0;
        suite.bench_heavy(&format!("sa/{name}"), || {
            seed += 1;
            let mut sa = SaMapper::new(SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut sa, &dfg, &acc));
        });
        let mut seed = 0;
        suite.bench_heavy(&format!("lisa_initial_labels/{name}"), || {
            seed += 1;
            let labels = GuidanceLabels::initial(&dfg);
            let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut lisa, &dfg, &acc));
        });
    }

    // The exact mapper only on the smallest kernel (it is the slow one).
    let dfg = polybench::kernel("doitgen").unwrap();
    suite.bench_heavy("ilp/doitgen", || {
        let mut ilp = ExactMapper::new(ExactParams::fast());
        std::hint::black_box(search.run(&mut ilp, &dfg, &acc));
    });

    suite.finish();
}
