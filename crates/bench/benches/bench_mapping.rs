//! Criterion benches for the three mappers — the kernel behind the
//! compilation-time comparison of Fig. 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lisa_arch::Accelerator;
use lisa_dfg::polybench;
use lisa_mapper::exact::{ExactMapper, ExactParams};
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaMapper, SaParams};

fn bench_mappers(c: &mut Criterion) {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let search = IiSearch { max_ii: Some(10) };
    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    for name in ["doitgen", "gemm", "mvt"] {
        let dfg = polybench::kernel(name).unwrap();
        group.bench_with_input(BenchmarkId::new("sa", name), &dfg, |b, dfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sa = SaMapper::new(SaParams::fast(), seed);
                std::hint::black_box(search.run(&mut sa, dfg, &acc))
            })
        });
        group.bench_with_input(BenchmarkId::new("lisa_initial_labels", name), &dfg, |b, dfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let labels = GuidanceLabels::initial(dfg);
                let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), seed);
                std::hint::black_box(search.run(&mut lisa, dfg, &acc))
            })
        });
    }
    // The exact mapper only on the smallest kernel (it is the slow one).
    let dfg = polybench::kernel("doitgen").unwrap();
    group.bench_with_input(BenchmarkId::new("ilp", "doitgen"), &dfg, |b, dfg| {
        b.iter(|| {
            let mut ilp = ExactMapper::new(ExactParams::fast());
            std::hint::black_box(search.run(&mut ilp, dfg, &acc))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
