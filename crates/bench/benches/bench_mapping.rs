//! Benches for the three mappers — the kernel behind the compilation-time
//! comparison of Fig. 11 — plus the annealer's inner-loop microbenches:
//! movement throughput (snapshot-clone vs. undo-journal engines) and the
//! deterministic portfolio. Mapper runs take seconds, so they register as
//! heavy benches: fewer samples, skipped in `cargo test` smoke mode. The
//! movement and portfolio entries are cheap and run (once) even in smoke
//! mode, so `scripts/verify.sh` can check the suite's JSON end to end.

use std::sync::Arc;

use lisa_arch::Accelerator;
use lisa_bench::timing::Suite;
use lisa_dfg::{polybench, Dfg, OpKind};
use lisa_events::{EventSink, Observer};
use lisa_events::{PipelineEvent, RecordingObserver};
use lisa_gnn::TrainConfig;
use lisa_labels::movement::{MovementPredictor, MovementRecorder};
use lisa_mapper::exact::{ExactMapper, ExactParams};
use lisa_mapper::greedy::{GreedyMapper, GreedyParams};
use lisa_mapper::sa::{movement_throughput, MovementEngine};
use lisa_mapper::schedule::{IiMapper, IiSearch};
use lisa_mapper::{
    anneal_chain, ConstructiveStrategy, GuidanceLabels, LabelSaMapper, PortfolioParams, SaMapper,
    SaParams, SearchStrategy, StrategySpec,
};

/// The paper's Fig. 4 DFG (A..J, dense region around B) — the running
/// example, and small enough that a movement costs microseconds.
fn fig4() -> Dfg {
    let mut g = Dfg::new("fig4");
    let a = g.add_node(OpKind::Load, "A");
    let b = g.add_node(OpKind::Load, "B");
    let c = g.add_node(OpKind::Add, "C");
    let d = g.add_node(OpKind::Mul, "D");
    let e = g.add_node(OpKind::Add, "E");
    let _f = g.add_node(OpKind::Sub, "F");
    let gg = g.add_node(OpKind::Add, "G");
    let h = g.add_node(OpKind::Mul, "H");
    let i = g.add_node(OpKind::Add, "I");
    let j = g.add_node(OpKind::Store, "J");
    g.add_data_edge(a, c).unwrap();
    g.add_data_edge(b, d).unwrap();
    g.add_data_edge(b, e).unwrap();
    g.add_data_edge(b, _f).unwrap();
    g.add_data_edge(b, i).unwrap();
    g.add_data_edge(c, gg).unwrap();
    g.add_data_edge(d, gg).unwrap();
    g.add_data_edge(d, h).unwrap();
    g.add_data_edge(e, h).unwrap();
    g.add_data_edge(e, i).unwrap();
    g.add_data_edge(gg, j).unwrap();
    g.add_data_edge(h, j).unwrap();
    g.validate().unwrap();
    g
}

fn main() {
    let mut suite = Suite::from_args("mapping");
    let acc = Accelerator::cgra("4x4", 4, 4);
    let search = IiSearch { max_ii: Some(10) };

    // Movement throughput: the annealer's hot loop on the Fig. 4 running
    // example over a 3x3 CGRA at II 3. `snapshot_clone` prices each move
    // against a full `Mapping` clone + cost rescan (the pre-journal code
    // path); `journal` uses the transaction rollback + incremental cost.
    // Identical seeds and identical trajectories, so ns/iter is a direct
    // engine comparison.
    let fig4 = fig4();
    let acc3 = Accelerator::cgra("3x3", 3, 3);
    const MOVES: u32 = 200;
    for (tag, engine) in [
        ("snapshot_clone", MovementEngine::SnapshotClone),
        ("journal", MovementEngine::Journal),
    ] {
        suite.bench(&format!("movement/fig4_3x3/{tag}"), || {
            std::hint::black_box(movement_throughput(&fig4, &acc3, 3, 42, MOVES, engine));
        });
    }

    // Big-fabric scaling: beyond 128 PEs the accelerator swaps its dense
    // all-pairs hop table for the landmark distance oracle. These entries
    // demonstrate end-to-end mapping on fabrics the dense table would
    // make needlessly heavy (a 32×32 table alone is 2 MiB, rebuilt per
    // interconnect change) and record the index footprint as metrics,
    // alongside the movement throughput the annealer sustains there. The
    // end-to-end map uses the greedy mapper: its producer-adjacent
    // placement stays compact regardless of fabric size, whereas the
    // annealer's fixed iteration budget cannot pull a random scatter
    // over 1024 PEs back together.
    let doitgen = polybench::kernel("doitgen").unwrap();
    for (key, dim) in [("16x16", 16usize), ("32x32", 32)] {
        let big = Accelerator::cgra(key, dim, dim);
        assert_eq!(big.distance_index_kind(), "oracle");
        let dense_equiv = big.pe_count() * big.pe_count() * std::mem::size_of::<u16>();
        suite.metric(
            &format!("distance/{key}_oracle_bytes"),
            big.distance_index_bytes() as f64,
            "bytes",
        );
        suite.metric(
            &format!("distance/{key}_dense_bytes"),
            dense_equiv as f64,
            "bytes",
        );
        suite.bench(&format!("movement/fig4_{key}/journal"), || {
            std::hint::black_box(movement_throughput(
                &fig4,
                &big,
                3,
                42,
                MOVES,
                MovementEngine::Journal,
            ));
        });
        suite.bench(&format!("e2e/doitgen_{key}/greedy"), || {
            let mut greedy = GreedyMapper::new(GreedyParams::default());
            let outcome = IiSearch { max_ii: Some(8) }.run(&mut greedy, &doitgen, &big);
            assert!(outcome.mapped(), "doitgen must map on {key}");
            std::hint::black_box(outcome);
        });
    }

    // Predict-then-verify A/B: train a micro-predictor from one observed
    // run (movement samples are a free by-product of an attached sink),
    // then run the identical fixed-length annealing chain with the
    // filter off and on. The router-invocation counters land in the JSON
    // as metrics, so the reduction is machine-checkable from
    // `target/bench`; the timing pair measures the wall-clock effect.
    let recorder = Arc::new(MovementRecorder::new());
    let mut observed = SaMapper::new(SaParams::fast(), 42)
        .with_observer(EventSink::new(Arc::clone(&recorder) as Arc<dyn Observer>));
    let _ = IiSearch { max_ii: Some(4) }.run(&mut observed, &fig4, &acc3);
    let (predictor, _) = MovementPredictor::train(
        &recorder.snapshot(),
        &TrainConfig {
            epochs: 40,
            ..TrainConfig::fast()
        },
        7,
    )
    .expect("observed run yields training pairs");
    let (_, off) = anneal_chain(&SaParams::fast(), &fig4, &acc3, 3, 42, None);
    let (_, on) = anneal_chain(&SaParams::fast(), &fig4, &acc3, 3, 42, Some(&predictor));
    suite.metric(
        "filter/fig4_3x3/off_router_invocations",
        off.router_invocations as f64,
        "calls",
    );
    suite.metric(
        "filter/fig4_3x3/on_router_invocations",
        on.router_invocations as f64,
        "calls",
    );
    suite.metric("filter/fig4_3x3/on_rejected", on.rejected as f64, "moves");
    suite.metric(
        "filter/fig4_3x3/on_false_rejects",
        on.false_rejects as f64,
        "moves",
    );
    suite.bench("filter/fig4_3x3/off", || {
        std::hint::black_box(anneal_chain(&SaParams::fast(), &fig4, &acc3, 3, 42, None));
    });
    suite.bench("filter/fig4_3x3/on", || {
        std::hint::black_box(anneal_chain(
            &SaParams::fast(),
            &fig4,
            &acc3,
            3,
            42,
            Some(&predictor),
        ));
    });

    // Portfolio: one full map_at_ii on Fig. 4 per iteration. chains=1 is
    // the historical single-chain annealer; chains=4 runs four seeds and
    // keeps the best — same result for any worker count, so the bench
    // fixes parallelism at the machine default.
    for chains in [1usize, 4] {
        let portfolio = PortfolioParams::new(chains);
        suite.bench(&format!("portfolio/fig4_3x3/chains{chains}"), || {
            let mut sa = SaMapper::new(SaParams::fast(), 42).with_portfolio(portfolio);
            std::hint::black_box(IiSearch { max_ii: Some(4) }.run(&mut sa, &fig4, &acc3));
        });
    }

    // Strategy portfolio A/B (same shape as the filter A/B above): arm A
    // is the homogeneous SA portfolio, arm B the mixed heterogeneous one
    // (constructive + SA + evolutionary lanes). The sweep interleaves the
    // arms per kernel across the fig9 4x4 suite at II 8, so machine drift
    // lands on both arms equally, and counts which lane wins each kernel
    // in arm B from the StrategyLaneWon events. Win counts, mapped
    // counts, and the constructive-vs-SA router-work comparison land in
    // the JSON as metrics (machine-checked by bench_check); the timing
    // pair on doitgen is the cheap-tier A/B, the full-suite pair below
    // is heavy tier.
    let mixed_spec = StrategySpec::parse("mixed").expect("mixed is a valid spec");
    let fig9: Vec<Dfg> = polybench::KERNEL_NAMES
        .iter()
        .map(|n| polybench::kernel(n).expect("fig9 kernel"))
        .collect();
    let recorder = Arc::new(RecordingObserver::default());
    let sink = EventSink::new(Arc::clone(&recorder) as Arc<dyn Observer>);
    let (mut mapped_sa, mut mapped_mixed) = (0u64, 0u64);
    let (mut wins_constructive, mut wins_sa, mut wins_evolutionary) = (0u64, 0u64, 0u64);
    for dfg in &fig9 {
        let mut a = SaMapper::new(SaParams::fast(), 7).with_portfolio(PortfolioParams::new(2));
        mapped_sa += u64::from(a.map_at_ii(dfg, &acc, 8).is_some());
        let mut b = SaMapper::new(SaParams::fast(), 7)
            .with_portfolio(PortfolioParams::new(2))
            .with_strategy(mixed_spec.clone())
            .with_observer(sink.clone());
        mapped_mixed += u64::from(b.map_at_ii(dfg, &acc, 8).is_some());
        for event in recorder.take() {
            if let PipelineEvent::StrategyLaneWon { strategy, .. } = event {
                match strategy {
                    "constructive" => wins_constructive += 1,
                    "evolutionary" => wins_evolutionary += 1,
                    _ => wins_sa += 1,
                }
            }
        }
    }
    suite.metric("strategy/fig9_4x4/mapped_sa", mapped_sa as f64, "kernels");
    suite.metric(
        "strategy/fig9_4x4/mapped_mixed",
        mapped_mixed as f64,
        "kernels",
    );
    suite.metric(
        "strategy/fig9_4x4/wins_constructive",
        wins_constructive as f64,
        "kernels",
    );
    suite.metric("strategy/fig9_4x4/wins_sa", wins_sa as f64, "kernels");
    suite.metric(
        "strategy/fig9_4x4/wins_evolutionary",
        wins_evolutionary as f64,
        "kernels",
    );

    // Router-work comparison at a common II: the constructive lane and a
    // single annealing chain (at the production `paper` schedule) both
    // map doitgen at II 3 on the 4x4; the lane does it in about one
    // router call per edge.
    let lane = ConstructiveStrategy::new();
    let (built, cstats) = lane.run(&doitgen, &acc, 3, 0, 0, &EventSink::null(), None);
    assert!(
        built.is_some(),
        "constructive lane completes doitgen at II 3"
    );
    let (annealed, sastats) = anneal_chain(&SaParams::paper(), &doitgen, &acc, 3, 7, None);
    assert!(annealed.is_some(), "SA chain completes doitgen at II 3");
    suite.metric(
        "strategy/doitgen_4x4/constructive_router_invocations",
        cstats.router_invocations as f64,
        "calls",
    );
    suite.metric(
        "strategy/doitgen_4x4/sa_router_invocations",
        sastats.router_invocations as f64,
        "calls",
    );

    for (tag, spec) in [
        ("sa", StrategySpec::default()),
        ("mixed", mixed_spec.clone()),
    ] {
        suite.bench(&format!("strategy/doitgen_4x4/{tag}"), || {
            let mut sa = SaMapper::new(SaParams::fast(), 7)
                .with_portfolio(PortfolioParams::new(2))
                .with_strategy(spec.clone());
            std::hint::black_box(sa.map_at_ii(&doitgen, &acc, 3));
        });
    }
    for (tag, spec) in [("sa", StrategySpec::default()), ("mixed", mixed_spec)] {
        let fig9 = &fig9;
        suite.bench_heavy(&format!("strategy/fig9_4x4/{tag}"), || {
            for dfg in fig9 {
                let mut sa = SaMapper::new(SaParams::fast(), 7)
                    .with_portfolio(PortfolioParams::new(2))
                    .with_strategy(spec.clone());
                std::hint::black_box(search.run(&mut sa, dfg, &acc));
            }
        });
    }

    for name in ["doitgen", "gemm", "mvt"] {
        let dfg = polybench::kernel(name).unwrap();
        let mut seed = 0;
        suite.bench_heavy(&format!("sa/{name}"), || {
            seed += 1;
            let mut sa = SaMapper::new(SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut sa, &dfg, &acc));
        });
        let mut seed = 0;
        suite.bench_heavy(&format!("lisa_initial_labels/{name}"), || {
            seed += 1;
            let labels = GuidanceLabels::initial(&dfg);
            let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut lisa, &dfg, &acc));
        });
    }

    // Portfolio speedup at realistic scale: 4-chain portfolio vs. the
    // single chain on a polybench kernel (heavy tier).
    let doitgen = polybench::kernel("doitgen").unwrap();
    for chains in [1usize, 4] {
        let portfolio = PortfolioParams::new(chains);
        suite.bench_heavy(&format!("portfolio/doitgen_4x4/chains{chains}"), || {
            let mut sa = SaMapper::new(SaParams::fast(), 7).with_portfolio(portfolio);
            std::hint::black_box(search.run(&mut sa, &doitgen, &acc));
        });
    }

    // The exact mapper only on the smallest kernel (it is the slow one).
    let dfg = polybench::kernel("doitgen").unwrap();
    suite.bench_heavy("ilp/doitgen", || {
        let mut ilp = ExactMapper::new(ExactParams::fast());
        std::hint::black_box(search.run(&mut ilp, &dfg, &acc));
    });

    suite.finish();
}
