//! Benches for the serving daemon: per-tier response cost (memory hit,
//! disk hit, full compute) and a load-generator replay that reports the
//! service-level numbers — cache-hit rate, p50/p99 latency, and
//! mappings/sec — for a mixed trace of repeated and unique requests.

use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa_arch::Accelerator;
use lisa_bench::timing::Suite;
use lisa_core::{Lisa, LisaConfig, MapRequest, ModelRegistry};
use lisa_dfg::polybench;
use lisa_events::EventSink;
use lisa_serve::{ServeConfig, ServeEngine};

fn registry() -> ModelRegistry {
    let acc = Accelerator::standard("4x4").expect("standard catalog has 4x4");
    let config = LisaConfig {
        training_dfgs: 6,
        ..LisaConfig::fast()
    };
    let lisa = Lisa::train_for(&acc, &config).expect("tiny training run completes");
    let mut registry = ModelRegistry::new();
    registry.insert(lisa).expect("fresh registry");
    registry
}

fn request(kernel: &str, seed: u64) -> String {
    MapRequest {
        accelerator: "4x4".to_string(),
        seed,
        max_ii: 8,
        strategy: Default::default(),
        dfg: polybench::kernel(kernel).expect("known kernel"),
    }
    .canonical_text()
}

fn engine(registry: ModelRegistry, config: ServeConfig) -> ServeEngine {
    ServeEngine::new(registry, config, EventSink::null()).expect("engine starts")
}

/// Replays `trace` through the engine from `threads` client threads and
/// returns the per-request latencies in submission order per thread.
fn replay(engine: &Arc<ServeEngine>, trace: &[Arc<String>], threads: usize) -> Vec<Duration> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = engine.clone();
                let slice: Vec<Arc<String>> =
                    trace.iter().skip(t).step_by(threads).cloned().collect();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(slice.len());
                    for req in &slice {
                        let t0 = Instant::now();
                        let (_, _) = engine.handle(req);
                        latencies.push(t0.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One mixed trace: `unique` distinct requests, each repeated `repeats`
/// times, interleaved — the shape a compiler-service cache lives on.
fn mixed_trace(unique: usize, repeats: usize) -> Vec<Arc<String>> {
    let kernels = ["gemm", "atax", "bicg", "mvt"];
    let uniques: Vec<Arc<String>> = (0..unique)
        .map(|i| Arc::new(request(kernels[i % kernels.len()], 3000 + i as u64)))
        .collect();
    let mut trace = Vec::with_capacity(unique * repeats);
    for round in 0..repeats {
        for i in 0..unique {
            // Stagger rounds so repeats of one request are spread out.
            trace.push(uniques[(i + round) % unique].clone());
        }
    }
    trace
}

fn main() {
    let mut suite = Suite::from_args("serve");

    // One tiny model trained once; every engine below shares its text.
    let model_text = {
        let reg = registry();
        reg.get("4x4").expect("4x4 model resident").export_model()
    };
    let import = |text: &str| {
        let mut reg = ModelRegistry::new();
        reg.insert(Lisa::import_model(&LisaConfig::fast(), text).expect("model re-imports"))
            .expect("fresh registry");
        reg
    };

    // Memory-tier hit: the request is resident in the LRU.
    let warm = engine(import(&model_text), ServeConfig::default());
    let req = request("gemm", 2022);
    let _ = warm.handle(&req);
    suite.bench("engine/hit_memory", || {
        std::hint::black_box(warm.handle(&req));
    });

    // Disk-tier hit: memory tier disabled, so every probe reads the
    // response file back (the restarted-daemon steady state).
    let disk_dir = std::env::temp_dir().join("lisa_bench_serve_disk");
    let _ = std::fs::remove_dir_all(&disk_dir);
    let disk_only = engine(
        import(&model_text),
        ServeConfig {
            mem_cache: 0,
            cache_dir: Some(disk_dir.clone()),
            ..ServeConfig::default()
        },
    );
    let _ = disk_only.handle(&req);
    suite.bench("engine/hit_disk", || {
        std::hint::black_box(disk_only.handle(&req));
    });

    // Full compute: a never-before-seen request every iteration (the
    // seed is part of the cache key), so the annealer runs each time.
    let cold = engine(import(&model_text), ServeConfig::default());
    let next_seed = Cell::new(10_000u64);
    suite.bench("engine/miss_compute", || {
        let seed = next_seed.get();
        next_seed.set(seed + 1);
        std::hint::black_box(cold.handle(&request("gemm", seed)));
    });

    // Load-generator replay: 6 unique requests x 4 repeats from 4 client
    // threads. The first pass reports the service-level numbers (hit
    // rate, p50/p99, mappings/sec); the registered bench then measures
    // steady-state (fully cached) replay throughput.
    let load = Arc::new(engine(
        import(&model_text),
        ServeConfig {
            workers: 2,
            queue: 24,
            ..ServeConfig::default()
        },
    ));
    let trace = mixed_trace(6, 4);
    let t0 = Instant::now();
    let mut latencies = replay(&load, &trace, 4);
    let wall = t0.elapsed();
    latencies.sort();
    let stats = load.stats();
    let hits = stats.hit_memory + stats.hit_disk + stats.coalesced;
    let hit_rate = 100.0 * hits as f64 / stats.requests as f64;
    let p50_ms = percentile(&latencies, 0.50).as_secs_f64() * 1e3;
    let p99_ms = percentile(&latencies, 0.99).as_secs_f64() * 1e3;
    let throughput = stats.requests as f64 / wall.as_secs_f64();
    println!(
        "serve-load: {} requests, hit_rate {hit_rate:.1}%, p50 {p50_ms:.2}ms, \
         p99 {p99_ms:.2}ms, {throughput:.1} mappings/sec",
        stats.requests,
    );
    // Also emit the service-level numbers through the JSON path so
    // BENCH_serve.json captures their trajectory across PRs.
    suite.metric("load/hit_rate_pct", hit_rate, "percent");
    suite.metric("load/p50_ms", p50_ms, "ms");
    suite.metric("load/p99_ms", p99_ms, "ms");
    suite.metric("load/mappings_per_sec", throughput, "per_sec");
    suite.bench("load/replay_24", || {
        std::hint::black_box(replay(&load, &trace, 4));
    });

    // Sustained load (heavy tier): a larger mixed trace with cold misses
    // on a fresh engine each iteration.
    let trace_heavy = mixed_trace(12, 8);
    suite.bench_heavy("load/sustained_96", || {
        let fresh = Arc::new(engine(
            import(&model_text),
            ServeConfig {
                workers: 4,
                queue: 96,
                ..ServeConfig::default()
            },
        ));
        std::hint::black_box(replay(&fresh, &trace_heavy, 8));
    });

    let _ = std::fs::remove_dir_all(&disk_dir);
    suite.finish();
}
