//! Benches for DFG construction and analyses.

use lisa_bench::timing::Suite;
use lisa_dfg::{analysis, polybench, random, same_level, RandomDfgConfig};

fn main() {
    let mut suite = Suite::from_args("dfg");

    suite.bench("build_all_kernels", || {
        std::hint::black_box(polybench::all_kernels());
    });

    let dfg = polybench::kernel("syr2k").unwrap();
    suite.bench("asap_syr2k", || {
        std::hint::black_box(analysis::asap(&dfg));
    });
    suite.bench("ancestors_syr2k", || {
        std::hint::black_box(analysis::ancestor_sets(&dfg));
    });
    suite.bench("dummy_edges_syr2k", || {
        std::hint::black_box(same_level::dummy_edges_annotated(&dfg));
    });

    let cfg = RandomDfgConfig::default();
    let mut seed = 0u64;
    suite.bench("random_generate", || {
        seed = seed.wrapping_add(1);
        std::hint::black_box(random::generate_random_dfg(&cfg, seed));
    });

    suite.finish();
}
