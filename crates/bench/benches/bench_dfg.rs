//! Criterion benches for DFG construction and analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use lisa_dfg::{analysis, polybench, random, same_level, RandomDfgConfig};

fn bench_polybench_build(c: &mut Criterion) {
    c.bench_function("dfg/build_all_kernels", |b| {
        b.iter(|| std::hint::black_box(polybench::all_kernels()))
    });
}

fn bench_analyses(c: &mut Criterion) {
    let dfg = polybench::kernel("syr2k").unwrap();
    c.bench_function("dfg/asap_syr2k", |b| {
        b.iter(|| std::hint::black_box(analysis::asap(&dfg)))
    });
    c.bench_function("dfg/ancestors_syr2k", |b| {
        b.iter(|| std::hint::black_box(analysis::ancestor_sets(&dfg)))
    });
    c.bench_function("dfg/dummy_edges_syr2k", |b| {
        b.iter(|| std::hint::black_box(same_level::dummy_edges_annotated(&dfg)))
    });
}

fn bench_random_generation(c: &mut Criterion) {
    let cfg = RandomDfgConfig::default();
    let mut seed = 0u64;
    c.bench_function("dfg/random_generate", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            std::hint::black_box(random::generate_random_dfg(&cfg, seed))
        })
    });
}

criterion_group!(
    benches,
    bench_polybench_build,
    bench_analyses,
    bench_random_generation
);
criterion_main!(benches);
