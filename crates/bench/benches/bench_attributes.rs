//! Criterion benches for the Attributes Generator (paper §IV-A).

use criterion::{criterion_group, criterion_main, Criterion};
use lisa_dfg::polybench;
use lisa_labels::DfgAttributes;

fn bench_attribute_generation(c: &mut Criterion) {
    for name in ["doitgen", "gemm", "syr2k"] {
        let dfg = polybench::kernel(name).unwrap();
        c.bench_function(&format!("attributes/generate_{name}"), |b| {
            b.iter(|| std::hint::black_box(DfgAttributes::generate(&dfg)))
        });
    }
    let unrolled = polybench::unrolled_kernels(&["symm"]).remove(0);
    c.bench_function("attributes/generate_symm_u2", |b| {
        b.iter(|| std::hint::black_box(DfgAttributes::generate(&unrolled)))
    });
}

criterion_group!(benches, bench_attribute_generation);
criterion_main!(benches);
