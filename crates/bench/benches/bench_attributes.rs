//! Benches for the Attributes Generator (paper §IV-A).

use lisa_bench::timing::Suite;
use lisa_dfg::polybench;
use lisa_labels::DfgAttributes;

fn main() {
    let mut suite = Suite::from_args("attributes");

    for name in ["doitgen", "gemm", "syr2k"] {
        let dfg = polybench::kernel(name).unwrap();
        suite.bench(&format!("generate_{name}"), || {
            std::hint::black_box(DfgAttributes::generate(&dfg));
        });
    }

    let unrolled = polybench::unrolled_kernels(&["symm"]).remove(0);
    suite.bench("generate_symm_u2", || {
        std::hint::black_box(DfgAttributes::generate(&unrolled));
    });

    suite.finish();
}
