//! Benches for GNN label inference and training (paper §VI-B: the trained
//! model generates labels "very fast" compared to the iterative method —
//! these benches quantify that).

use lisa_bench::timing::Suite;
use lisa_dfg::polybench;
use lisa_gnn::dataset::{ContextEdgeSample, EdgeSample, NodeGraphSample};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};
use lisa_gnn::{PlanScratch, TrainConfig};
use lisa_labels::attributes::{DfgAttributes, EDGE_ATTR_DIM, NODE_ATTR_DIM};

fn schedule_sample() -> NodeGraphSample {
    let dfg = polybench::kernel("syr2k").unwrap();
    let attrs = DfgAttributes::generate(&dfg);
    NodeGraphSample {
        node_attrs: attrs.node.clone(),
        neighbors: DfgAttributes::adjacency(&dfg),
        targets: vec![0.0; dfg.node_count()],
    }
}

fn schedule_train_set(count: usize) -> Vec<NodeGraphSample> {
    let base = schedule_sample();
    (0..count)
        .map(|i| {
            let targets = (0..base.len()).map(|v| ((v + i) % 7) as f64).collect();
            NodeGraphSample {
                targets,
                ..base.clone()
            }
        })
        .collect()
}

fn edge_train_set(count: usize) -> Vec<EdgeSample> {
    (0..count)
        .map(|i| EdgeSample {
            attrs: vec![f64::from((i % 7) as u32); EDGE_ATTR_DIM],
            target: f64::from((i % 5) as u32),
        })
        .collect()
}

fn spatial_train_set(count: usize) -> Vec<ContextEdgeSample> {
    (0..count)
        .map(|i| ContextEdgeSample {
            attrs: vec![f64::from((i % 5) as u32) + 0.5; EDGE_ATTR_DIM],
            neighbor_attrs: (0..(i % 4) + 1)
                .map(|k| vec![f64::from(k as u32) + 0.5; EDGE_ATTR_DIM])
                .collect(),
            target: f64::from((i % 3) as u32),
        })
        .collect()
}

fn main() {
    let mut suite = Suite::from_args("gnn");
    let train_cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::paper()
    };

    // Inference throughput (predictions/sec = 1e9 / median_ns). The
    // predict entries run the serving path — compiled plans on the
    // thread's warm scratch — so their history measures graph-tape →
    // compiled-plan inference across PRs; the `_tape` twins keep the
    // historical `Graph::inference` path measured in-binary.
    let net = ScheduleOrderNet::new(NODE_ATTR_DIM, 0);
    let net_plan = net.compile();
    let sample = schedule_sample();
    suite.bench("schedule_order/predict_syr2k", || {
        PlanScratch::with(|s| std::hint::black_box(net_plan.predict(s, &sample)));
    });
    suite.bench("schedule_order/predict_syr2k_tape", || {
        std::hint::black_box(net.predict(&sample));
    });

    let mlp = EdgeMlp::new(EDGE_ATTR_DIM, 0);
    let mlp_plan = mlp.compile();
    let attrs = vec![1.0; EDGE_ATTR_DIM];
    suite.bench("edge_mlp/predict", || {
        PlanScratch::with(|s| std::hint::black_box(mlp_plan.predict(s, &attrs)));
    });
    suite.bench("edge_mlp/predict_tape", || {
        std::hint::black_box(mlp.predict(&attrs));
    });

    let spatial = SpatialNet::new(EDGE_ATTR_DIM, 0);
    let spatial_plan = spatial.compile();
    let ctx = &spatial_train_set(8)[3];
    suite.bench("spatial/predict", || {
        PlanScratch::with(|s| std::hint::black_box(spatial_plan.predict(s, ctx)));
    });
    suite.bench("spatial/predict_tape", || {
        std::hint::black_box(spatial.predict(ctx));
    });

    // Training-epoch throughput: one full epoch over a fixed set, fresh
    // net per iteration so Adam state never carries across iterations.
    let schedule_samples = schedule_train_set(8);
    suite.bench("schedule_order/train_epoch_8", || {
        let mut net = ScheduleOrderNet::new(NODE_ATTR_DIM, 1);
        std::hint::black_box(net.train(&schedule_samples, &train_cfg));
    });

    let edge_samples = edge_train_set(64);
    suite.bench("edge_mlp/train_epoch_64", || {
        let mut net = EdgeMlp::new(EDGE_ATTR_DIM, 1);
        std::hint::black_box(net.train(&edge_samples, &train_cfg));
    });

    let spatial_samples = spatial_train_set(48);
    suite.bench("spatial/train_epoch_48", || {
        let mut net = SpatialNet::new(EDGE_ATTR_DIM, 1);
        std::hint::black_box(net.train(&spatial_samples, &train_cfg));
    });

    suite.finish();
}
