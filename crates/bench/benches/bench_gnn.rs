//! Benches for GNN label inference and training (paper §VI-B: the trained
//! model generates labels "very fast" compared to the iterative method —
//! these benches quantify that).

use lisa_bench::timing::Suite;
use lisa_dfg::polybench;
use lisa_gnn::dataset::{EdgeSample, NodeGraphSample};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet};
use lisa_gnn::TrainConfig;
use lisa_labels::attributes::{DfgAttributes, EDGE_ATTR_DIM, NODE_ATTR_DIM};

fn schedule_sample() -> NodeGraphSample {
    let dfg = polybench::kernel("syr2k").unwrap();
    let attrs = DfgAttributes::generate(&dfg);
    NodeGraphSample {
        node_attrs: attrs.node.clone(),
        neighbors: DfgAttributes::adjacency(&dfg),
        targets: vec![0.0; dfg.node_count()],
    }
}

fn main() {
    let mut suite = Suite::from_args("gnn");

    let net = ScheduleOrderNet::new(NODE_ATTR_DIM, 0);
    let sample = schedule_sample();
    suite.bench("schedule_order_inference_syr2k", || {
        std::hint::black_box(net.predict(&sample));
    });

    let mlp = EdgeMlp::new(EDGE_ATTR_DIM, 0);
    let attrs = vec![1.0; EDGE_ATTR_DIM];
    suite.bench("edge_mlp_inference", || {
        std::hint::black_box(mlp.predict(&attrs));
    });

    let samples: Vec<EdgeSample> = (0..64)
        .map(|i| EdgeSample {
            attrs: vec![f64::from(i % 7); EDGE_ATTR_DIM],
            target: f64::from(i % 5),
        })
        .collect();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::paper()
    };
    suite.bench("edge_mlp_train_epoch_64", || {
        let mut net = EdgeMlp::new(EDGE_ATTR_DIM, 1);
        std::hint::black_box(net.train(&samples, &cfg));
    });

    suite.finish();
}
