//! Benches for the Dijkstra router over the time-expanded MRRG.

use lisa_arch::{Accelerator, Mrrg, PeId, Resource};
use lisa_bench::timing::Suite;
use lisa_dfg::NodeId;
use lisa_mapper::router::find_route;

fn main() {
    let mut suite = Suite::from_args("router");

    let acc = Accelerator::cgra("4x4", 4, 4);
    let mrrg = Mrrg::new(&acc, 4).unwrap();
    suite.bench("adjacent_4x4", || {
        std::hint::black_box(find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(5),
            0,
            PeId::new(6),
            1,
            |_r: Resource, _t| Some(1),
        ));
    });

    let acc8 = Accelerator::cgra("8x8", 8, 8);
    let mrrg8 = Mrrg::new(&acc8, 8).unwrap();
    suite.bench("corner_to_corner_8x8", || {
        std::hint::black_box(find_route(
            &mrrg8,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(63),
            14,
            |_r: Resource, _t| Some(1),
        ));
    });

    let mrrg6 = Mrrg::new(&acc, 6).unwrap();
    // Only even-index PEs usable: forces detours.
    let filter = |r: Resource, _t: u32| match r {
        Resource::Fu(p) if p.index() % 2 == 1 => None,
        _ => Some(1),
    };
    suite.bench("congested_4x4", || {
        std::hint::black_box(find_route(
            &mrrg6,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(10),
            8,
            filter,
        ));
    });

    suite.finish();
}
