//! Criterion benches for the Dijkstra router over the time-expanded MRRG.

use criterion::{criterion_group, criterion_main, Criterion};
use lisa_arch::{Accelerator, Mrrg, PeId, Resource};
use lisa_dfg::NodeId;
use lisa_mapper::router::find_route;

fn bench_short_route(c: &mut Criterion) {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let mrrg = Mrrg::new(&acc, 4).unwrap();
    c.bench_function("router/adjacent_4x4", |b| {
        b.iter(|| {
            find_route(
                &mrrg,
                NodeId::new(0),
                PeId::new(5),
                0,
                PeId::new(6),
                1,
                |_r: Resource, _t| Some(1),
            )
        })
    });
}

fn bench_cross_chip_route(c: &mut Criterion) {
    let acc = Accelerator::cgra("8x8", 8, 8);
    let mrrg = Mrrg::new(&acc, 8).unwrap();
    c.bench_function("router/corner_to_corner_8x8", |b| {
        b.iter(|| {
            find_route(
                &mrrg,
                NodeId::new(0),
                PeId::new(0),
                0,
                PeId::new(63),
                14,
                |_r: Resource, _t| Some(1),
            )
        })
    });
}

fn bench_congested_route(c: &mut Criterion) {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let mrrg = Mrrg::new(&acc, 6).unwrap();
    // Only even-index PEs usable: forces detours.
    let filter = |r: Resource, _t: u32| match r {
        Resource::Fu(p) if p.index() % 2 == 1 => None,
        _ => Some(1),
    };
    c.bench_function("router/congested_4x4", |b| {
        b.iter(|| {
            find_route(
                &mrrg,
                NodeId::new(0),
                PeId::new(0),
                0,
                PeId::new(10),
                8,
                filter,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_short_route,
    bench_cross_chip_route,
    bench_congested_route
);
criterion_main!(benches);
