//! Ablation benches for LISA's design choices (DESIGN.md §7): label
//! subsets in the placement cost and the σ deviation schedule. Full mapper
//! runs: registered heavy, so `cargo test` smoke mode skips them.

use lisa_arch::Accelerator;
use lisa_bench::timing::Suite;
use lisa_dfg::polybench;
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaParams};

fn main() {
    let mut suite = Suite::from_args("ablation");
    let acc = Accelerator::cgra("4x4", 4, 4);
    let search = IiSearch { max_ii: Some(10) };
    let dfg = polybench::kernel("syr2k").unwrap();
    let labels = GuidanceLabels::initial(&dfg);

    let mut seed = 0;
    suite.bench_heavy("mode/full", || {
        seed += 1;
        let mut m = LabelSaMapper::new(labels.clone(), SaParams::fast(), seed);
        std::hint::black_box(search.run(&mut m, &dfg, &acc));
    });
    let mut seed = 0;
    suite.bench_heavy("mode/routing_priority_only", || {
        seed += 1;
        let mut m = LabelSaMapper::routing_priority_only(labels.clone(), SaParams::fast(), seed);
        std::hint::black_box(search.run(&mut m, &dfg, &acc));
    });
    let mut seed = 0;
    suite.bench_heavy("mode/initial_only", || {
        seed += 1;
        let mut m = LabelSaMapper::initial_only(labels.clone(), SaParams::fast(), seed);
        std::hint::black_box(search.run(&mut m, &dfg, &acc));
    });

    suite.finish();
}
