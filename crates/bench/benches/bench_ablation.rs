//! Ablation benches for LISA's design choices (DESIGN.md §7): label
//! subsets in the placement cost and the σ deviation schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lisa_arch::Accelerator;
use lisa_dfg::polybench;
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaParams};

fn bench_label_modes(c: &mut Criterion) {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let search = IiSearch { max_ii: Some(10) };
    let dfg = polybench::kernel("syr2k").unwrap();
    let labels = GuidanceLabels::initial(&dfg);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("mode", "full"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut m = LabelSaMapper::new(labels.clone(), SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut m, &dfg, &acc))
        })
    });
    group.bench_function(BenchmarkId::new("mode", "routing_priority_only"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut m =
                LabelSaMapper::routing_priority_only(labels.clone(), SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut m, &dfg, &acc))
        })
    });
    group.bench_function(BenchmarkId::new("mode", "initial_only"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut m = LabelSaMapper::initial_only(labels.clone(), SaParams::fast(), seed);
            std::hint::black_box(search.run(&mut m, &dfg, &acc))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_label_modes);
criterion_main!(benches);
