//! Benches for the staged training pipeline and its persistable text
//! artifacts: DFG-set and labelled-dataset round-trips (the cost a
//! checkpointed run pays over an in-memory one) and, in the heavy tier,
//! an end-to-end fast-scale pipeline run.

use lisa_arch::Accelerator;
use lisa_bench::timing::Suite;
use lisa_core::{LisaConfig, Pipeline};
use lisa_dfg::text::{parse_dfg_set, write_dfg_set};
use lisa_dfg::{random, RandomDfgConfig};
use lisa_labels::{parse_dataset, write_dataset, Dataset, DatasetEntry, GeneratedLabels};
use lisa_mapper::GuidanceLabels;

/// A labelled dataset with hand-built labels: exercises the serializer
/// shape without paying for real label generation.
fn synthetic_dataset(dfgs: &[lisa_dfg::Dfg]) -> Dataset {
    let entries: Vec<DatasetEntry> = dfgs
        .iter()
        .map(|dfg| {
            let nodes = dfg.node_count();
            let edges = dfg.edge_count();
            DatasetEntry {
                dfg: dfg.clone(),
                outcome: Some(GeneratedLabels {
                    labels: GuidanceLabels {
                        schedule_order: (0..nodes).map(|i| i as f64 * 0.5).collect(),
                        same_level: Vec::new(),
                        spatial: (0..edges).map(|i| (i % 3) as f64).collect(),
                        temporal: (0..edges).map(|i| 1.0 + (i % 2) as f64).collect(),
                    },
                    best_ii: 3,
                    mii: 2,
                    candidate_count: 4,
                }),
            }
        })
        .collect();
    Dataset {
        accelerator: "4x4".to_string(),
        declared_count: entries.len(),
        entries,
    }
}

fn main() {
    let mut suite = Suite::from_args("pipeline");
    let dfg_config = RandomDfgConfig::default();

    // Stage 1 alone: synthetic DFG generation.
    suite.bench("stage/generate_dfgs_12", || {
        std::hint::black_box(random::generate_dataset(&dfg_config, 2022, 12));
    });

    // Checkpoint artifact round-trips: serialize + strict re-parse.
    let dfgs = random::generate_dataset(&dfg_config, 2022, 12);
    suite.bench("artifacts/dfg_set_round_trip_12", || {
        let text = write_dfg_set(&dfgs);
        std::hint::black_box(parse_dfg_set(&text).unwrap());
    });

    let dataset = synthetic_dataset(&dfgs);
    suite.bench("artifacts/dataset_round_trip_12", || {
        let text = write_dataset(&dataset);
        std::hint::black_box(parse_dataset(&text).unwrap());
    });

    // End-to-end staged pipeline at fast scale (heavy tier: seconds).
    let acc = Accelerator::cgra("4x4", 4, 4);
    suite.bench_heavy("pipeline/train_fast_6", || {
        let config = LisaConfig {
            training_dfgs: 6,
            ..LisaConfig::fast()
        };
        let lisa = Pipeline::new(&acc, config)
            .run()
            .expect("fast config yields a dataset")
            .expect("pipeline runs to completion");
        std::hint::black_box(lisa);
    });

    suite.finish();
}
