//! Shared experiment machinery: scales, budgets, mapper protocols.

use std::sync::Arc;
use std::time::Duration;

use lisa_arch::Accelerator;
use lisa_core::{Lisa, LisaConfig, Pipeline};
use lisa_dfg::{Dfg, RandomDfgConfig};
use lisa_events::{EventSink, JsonlObserver, MultiObserver, Observer, StderrObserver};
use lisa_gnn::TrainConfig;
use lisa_labels::{FilterConfig, IterGenConfig};
use lisa_mapper::exact::{ExactMapper, ExactParams};
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{MappingOutcome, SaMapper, SaParams};

/// Experiment scale, selected by the `LISA_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale runs reproducing the qualitative shapes (default).
    Quick,
    /// Full-scale runs closer to the paper's budgets
    /// (`LISA_SCALE=paper`).
    Paper,
}

impl Scale {
    /// Reads `LISA_SCALE` (`"paper"` → [`Scale::Paper`], anything else →
    /// [`Scale::Quick`]).
    pub fn from_env() -> Scale {
        match std::env::var("LISA_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

/// One benchmark's outcomes under the three mappers.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Exact branch-and-bound (ILP substitute) outcome.
    pub ilp: MappingOutcome,
    /// Vanilla SA outcome (median of three seeded runs, as in §VI).
    pub sa: MappingOutcome,
    /// LISA (GNN labels + label-aware SA) outcome.
    pub lisa: MappingOutcome,
}

/// Central budget/configuration holder for all experiment binaries.
#[derive(Debug, Clone)]
pub struct Harness {
    scale: Scale,
    seed: u64,
}

impl Harness {
    /// Creates a harness at the environment-selected scale.
    pub fn from_env() -> Harness {
        Harness::new(Scale::from_env())
    }

    /// Creates a harness at an explicit scale.
    pub fn new(scale: Scale) -> Harness {
        Harness { scale, seed: 2022 }
    }

    /// The active scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The six paper architectures by key: `3x3`, `4x4`, `4x4-lr`,
    /// `4x4-lm`, `8x8`, `systolic`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown key.
    pub fn architecture(key: &str) -> Accelerator {
        match key {
            "3x3" => Accelerator::cgra("3x3", 3, 3),
            "4x4" => Accelerator::cgra("4x4", 4, 4),
            "4x4-lr" => Accelerator::cgra("4x4-lr", 4, 4).with_regs_per_pe(1),
            "4x4-lm" => Accelerator::cgra("4x4-lm", 4, 4)
                .with_memory(lisa_arch::MemoryConnectivity::LeftColumn),
            "8x8" => Accelerator::cgra("8x8", 8, 8),
            "systolic" => Accelerator::systolic("systolic-5x5", 5, 5),
            other => panic!("unknown architecture key {other:?}"),
        }
    }

    /// Annealer budget for SA and LISA at this scale.
    pub fn sa_params(&self) -> SaParams {
        match self.scale {
            Scale::Quick => SaParams {
                time_limit: Duration::from_secs(3),
                ..SaParams::paper()
            },
            Scale::Paper => SaParams::paper(),
        }
    }

    /// Branch-and-bound budget (per target II) for the ILP substitute.
    pub fn exact_params(&self) -> ExactParams {
        match self.scale {
            Scale::Quick => ExactParams {
                time_limit: Duration::from_millis(1500),
                max_states: 400_000,
            },
            Scale::Paper => ExactParams {
                time_limit: Duration::from_secs(20),
                max_states: 20_000_000,
            },
        }
    }

    /// Cap on the II search, bounding failure-path run times.
    pub fn ii_cap(&self) -> u32 {
        16
    }

    /// LISA training configuration for one accelerator.
    pub fn lisa_config(&self, systolic: bool) -> LisaConfig {
        let dfg = if systolic {
            RandomDfgConfig::systolic()
        } else {
            // Cover the application range including unrolled kernels
            // (34-58 nodes) so label predictions stay in-distribution.
            RandomDfgConfig {
                min_nodes: 8,
                max_nodes: 40,
                ..RandomDfgConfig::default()
            }
        };
        match self.scale {
            Scale::Quick => LisaConfig {
                training_dfgs: 48,
                dfg,
                iter_gen: IterGenConfig {
                    rounds: 4,
                    sa: SaParams {
                        time_limit: Duration::from_secs(2),
                        ..SaParams::paper()
                    },
                    max_ii: Some(12),
                    parallelism: 1,
                    seed: self.seed,
                },
                // The quick scale cannot afford paper-strength annealing in
                // the label generator, so admit slightly-off-optimal labels
                // rather than starving the networks of data.
                filter: FilterConfig {
                    sigma: 0.1,
                    threshold: 0.7,
                },
                train: TrainConfig {
                    epochs: 120,
                    ..TrainConfig::paper()
                },
                sa: self.sa_params(),
                seed: self.seed,
                ..LisaConfig::default()
            },
            Scale::Paper => LisaConfig {
                training_dfgs: 160,
                dfg,
                iter_gen: IterGenConfig {
                    seed: self.seed,
                    ..IterGenConfig::default()
                },
                sa: self.sa_params(),
                seed: self.seed,
                ..LisaConfig::default()
            },
        }
    }

    /// Trains LISA for an accelerator through the staged pipeline, with
    /// stage progress on stderr. Set `LISA_EVENT_LOG=<path>` to also
    /// capture the full structured event stream as JSONL.
    pub fn train_lisa(&self, acc: &Accelerator) -> Lisa {
        eprintln!("[harness] training LISA for {} ...", acc.name());
        let config = self.lisa_config(acc.is_spatial_only());
        let lisa = Pipeline::new(acc, config)
            .with_observer(Self::event_sink())
            .run()
            .expect("harness training configs yield a non-empty dataset")
            .expect("pipeline without stop_after runs to completion");
        let stats = lisa.stats();
        eprintln!(
            "[harness] trained: {}/{} DFGs kept, accuracy {}",
            stats.dfgs_kept,
            stats.dfgs_generated,
            stats.accuracy.summary()
        );
        lisa
    }

    /// Stderr milestones, teed into a JSONL event log when
    /// `LISA_EVENT_LOG` names a writable path.
    fn event_sink() -> EventSink {
        let stderr: Arc<dyn Observer> = Arc::new(StderrObserver::new());
        match std::env::var("LISA_EVENT_LOG") {
            Ok(path) if !path.is_empty() => {
                match JsonlObserver::to_file(std::path::Path::new(&path)) {
                    Ok(jsonl) => {
                        EventSink::new(Arc::new(MultiObserver::new(vec![stderr, Arc::new(jsonl)])))
                    }
                    Err(e) => {
                        eprintln!("[harness] cannot open LISA_EVENT_LOG {path}: {e}");
                        EventSink::new(stderr)
                    }
                }
            }
            _ => EventSink::new(stderr),
        }
    }

    /// Runs the three mappers on one benchmark. SA follows the paper's
    /// protocol: three seeded runs, median result.
    pub fn run_case(&self, dfg: &Dfg, acc: &Accelerator, lisa: &Lisa) -> CaseResult {
        let cap = self.ii_cap();
        let search = IiSearch { max_ii: Some(cap) };

        let mut ilp = ExactMapper::new(self.exact_params());
        let ilp_outcome = search.run(&mut ilp, dfg, acc);

        let sa_outcome = self.median_sa(dfg, acc);

        let (lisa_outcome, _) = lisa.map_capped(dfg, acc, cap);

        CaseResult {
            benchmark: dfg.name().to_string(),
            ilp: ilp_outcome,
            sa: sa_outcome,
            lisa: lisa_outcome,
        }
    }

    /// Median-of-three vanilla SA ("we run SA three times [...] and use
    /// the median performance", §VI).
    pub fn median_sa(&self, dfg: &Dfg, acc: &Accelerator) -> MappingOutcome {
        let search = IiSearch {
            max_ii: Some(self.ii_cap()),
        };
        let mut outcomes: Vec<MappingOutcome> = (0..3)
            .map(|run| {
                let mut sa = SaMapper::new(self.sa_params(), self.seed + run * 101);
                search.run(&mut sa, dfg, acc)
            })
            .collect();
        outcomes.sort_by_key(|o| o.ii.unwrap_or(u32::MAX));
        outcomes.swap_remove(1)
    }

    /// Like [`Self::median_sa`] but with explicit parameters (used by the
    /// Fig. 13 SA-M ablation).
    pub fn median_sa_with(
        &self,
        dfg: &Dfg,
        acc: &Accelerator,
        params: &SaParams,
    ) -> MappingOutcome {
        let search = IiSearch {
            max_ii: Some(self.ii_cap()),
        };
        let mut outcomes: Vec<MappingOutcome> = (0..3)
            .map(|run| {
                let mut sa = SaMapper::new(params.clone(), self.seed + run * 101);
                search.run(&mut sa, dfg, acc)
            })
            .collect();
        outcomes.sort_by_key(|o| o.ii.unwrap_or(u32::MAX));
        outcomes.swap_remove(1)
    }

    /// The base seed used by all experiment runs.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    #[test]
    fn architecture_registry_covers_paper_suite() {
        for key in ["3x3", "4x4", "4x4-lr", "4x4-lm", "8x8", "systolic"] {
            let acc = Harness::architecture(key);
            assert!(acc.pe_count() >= 9);
        }
        assert_eq!(Harness::architecture("4x4-lr").regs_per_pe(), 1);
        assert!(Harness::architecture("systolic").is_spatial_only());
    }

    #[test]
    #[should_panic(expected = "unknown architecture key")]
    fn unknown_key_panics() {
        let _ = Harness::architecture("9x9");
    }

    #[test]
    fn median_sa_returns_a_middle_outcome() {
        let h = Harness::new(Scale::Quick);
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Harness::architecture("4x4");
        let o = h.median_sa(&dfg, &acc);
        assert_eq!(o.mapper, "SA");
        assert!(o.mapped());
    }

    #[test]
    fn scales_differ_in_budget() {
        let q = Harness::new(Scale::Quick);
        let p = Harness::new(Scale::Paper);
        assert!(q.exact_params().time_limit < p.exact_params().time_limit);
        assert!(q.lisa_config(false).training_dfgs < p.lisa_config(false).training_dfgs);
    }
}
