//! Plain-text table rendering for the experiment binaries.
//!
//! Conventions follow the paper's figures: an II of 0 means the method
//! could not map the benchmark (Fig. 9 caption); the systolic figure uses
//! ✓/✗ instead of II values.

use std::time::Duration;

use crate::CaseResult;

/// Renders the Fig. 9 style header.
pub fn ii_header() -> String {
    format!("{:<12} {:>6} {:>6} {:>6}", "benchmark", "ILP", "SA", "LISA")
}

/// Renders one II row; unmapped methods print 0, as in the paper.
pub fn ii_row(case: &CaseResult) -> String {
    format!(
        "{:<12} {:>6} {:>6} {:>6}",
        case.benchmark,
        case.ilp.ii.unwrap_or(0),
        case.sa.ii.unwrap_or(0),
        case.lisa.ii.unwrap_or(0)
    )
}

/// Renders one success row for the systolic accelerator (Fig. 9g).
pub fn tick_row(case: &CaseResult) -> String {
    let mark = |mapped: bool| if mapped { "ok" } else { " x" };
    format!(
        "{:<12} {:>6} {:>6} {:>6}",
        case.benchmark,
        mark(case.ilp.mapped()),
        mark(case.sa.mapped()),
        mark(case.lisa.mapped())
    )
}

/// Renders one compilation-time row (Fig. 11); failures are annotated with
/// `*` (the paper uses the termination time as the compilation time).
pub fn time_row(case: &CaseResult) -> String {
    let fmt = |d: Duration, mapped: bool| {
        let mark = if mapped { ' ' } else { '*' };
        format!("{:>9.3}s{mark}", d.as_secs_f64())
    };
    format!(
        "{:<12} {} {} {}",
        case.benchmark,
        fmt(case.ilp.compile_time, case.ilp.mapped()),
        fmt(case.sa.compile_time, case.sa.mapped()),
        fmt(case.lisa.compile_time, case.lisa.mapped())
    )
}

/// Geometric-mean speedup of LISA's compilation time over another method
/// (Fig. 11 reports "594x and 17x compilation time reduction").
pub fn geomean_speedup(cases: &[CaseResult], other: impl Fn(&CaseResult) -> Duration) -> f64 {
    if cases.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = cases
        .iter()
        .map(|c| {
            let lisa = c.lisa.compile_time.as_secs_f64().max(1e-6);
            (other(c).as_secs_f64().max(1e-6) / lisa).ln()
        })
        .sum();
    (log_sum / cases.len() as f64).exp()
}

/// Counts mapped benchmarks per method, for the summary lines.
pub fn mapped_counts(cases: &[CaseResult]) -> (usize, usize, usize) {
    (
        cases.iter().filter(|c| c.ilp.mapped()).count(),
        cases.iter().filter(|c| c.sa.mapped()).count(),
        cases.iter().filter(|c| c.lisa.mapped()).count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::power::Activity;
    use lisa_mapper::MappingOutcome;

    fn outcome(name: &str, ii: Option<u32>, ms: u64) -> MappingOutcome {
        MappingOutcome {
            mapper: name.to_string(),
            dfg: "k".to_string(),
            accelerator: "4x4".to_string(),
            ii,
            compile_time: Duration::from_millis(ms),
            routing_cells: 3,
            activity: Activity::default(),
            ops: 10,
            attempts: 1,
        }
    }

    fn case() -> CaseResult {
        CaseResult {
            benchmark: "gemm".to_string(),
            ilp: outcome("ILP", None, 4000),
            sa: outcome("SA", Some(3), 200),
            lisa: outcome("LISA", Some(2), 50),
        }
    }

    #[test]
    fn ii_row_prints_zero_for_failures() {
        let row = ii_row(&case());
        assert!(row.contains("gemm"));
        assert!(row.contains('0'));
        assert!(row.contains('2'));
    }

    #[test]
    fn tick_row_marks_failures() {
        let row = tick_row(&case());
        assert!(row.contains('x'));
        assert!(row.contains("ok"));
    }

    #[test]
    fn time_row_stars_failures() {
        let row = time_row(&case());
        assert!(row.contains('*'));
    }

    #[test]
    fn speedup_is_ratio() {
        let cases = vec![case()];
        let vs_sa = geomean_speedup(&cases, |c| c.sa.compile_time);
        assert!((vs_sa - 4.0).abs() < 1e-9);
        let vs_ilp = geomean_speedup(&cases, |c| c.ilp.compile_time);
        assert!((vs_ilp - 80.0).abs() < 1e-9);
        assert_eq!(geomean_speedup(&[], |c| c.sa.compile_time), 1.0);
    }

    #[test]
    fn counts() {
        let cases = vec![case()];
        assert_eq!(mapped_counts(&cases), (0, 1, 1));
    }
}
