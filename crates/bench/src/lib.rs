//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI). See DESIGN.md §2 for the experiment → binary map.
//!
//! Each binary in `src/bin/` prints the same rows/series the paper
//! reports. The [`Harness`] centralises the mapper budgets, the trained
//! LISA instances, and the SA median-of-three protocol, so every figure
//! compares the algorithms under identical machinery.
//!
//! Set `LISA_SCALE=paper` for full-scale runs (more training DFGs and
//! epochs, longer ILP budgets); the default `quick` scale reproduces the
//! qualitative shapes in minutes.
//!
//! Micro-benchmarks under `benches/` run on the in-repo [`timing`]
//! harness (`cargo bench`); under `cargo test` they execute in smoke
//! mode, so the whole suite stays hermetic and offline.

pub mod harness;
pub mod tables;
pub mod timing;

pub use harness::{CaseResult, Harness, Scale};
