//! Extension experiment: where does the deterministic list scheduler sit?
//! The paper's taxonomy (§I) puts hybrid heuristics between meta-heuristics
//! and mathematical optimisation; this binary quantifies that on the 4×4
//! baseline CGRA — greedy is near-instant but pays II on dense kernels,
//! SA recovers some II with stochastic search, LISA recovers more.

use lisa_bench::Harness;
use lisa_mapper::greedy::GreedyMapper;
use lisa_mapper::schedule::IiSearch;

fn main() {
    let harness = Harness::from_env();
    let acc = Harness::architecture("4x4");
    let lisa = harness.train_lisa(&acc);

    println!();
    println!("Extension: greedy list scheduling vs SA vs LISA (4x4, II / time)");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "benchmark", "Greedy", "SA", "LISA"
    );
    let search = IiSearch {
        max_ii: Some(harness.ii_cap()),
    };
    let fmt = |o: &lisa_mapper::MappingOutcome| {
        format!(
            "{}@{:>6.0}ms",
            o.ii.map_or("fail".to_string(), |v| format!("II{v}")),
            o.compile_time.as_secs_f64() * 1e3
        )
    };
    let mut sums = (0u32, 0u32, 0u32);
    for dfg in lisa_dfg::polybench::all_kernels() {
        let mut greedy = GreedyMapper::default();
        let g = search.run(&mut greedy, &dfg, &acc);
        let s = harness.median_sa(&dfg, &acc);
        let (l, _) = lisa.map_capped(&dfg, &acc, harness.ii_cap());
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            dfg.name(),
            fmt(&g),
            fmt(&s),
            fmt(&l)
        );
        sums.0 += g.ii.unwrap_or(17);
        sums.1 += s.ii.unwrap_or(17);
        sums.2 += l.ii.unwrap_or(17);
    }
    println!(
        "total II: Greedy {}  SA {}  LISA {} (lower is better)",
        sums.0, sums.1, sums.2
    );
}
