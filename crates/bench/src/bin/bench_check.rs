//! CI gate for the bench suite's JSON output.
//!
//! `scripts/verify.sh` runs the bench targets in smoke mode (via `cargo
//! test`), which writes `BENCH_<suite>.json` with single-shot timings,
//! then runs this binary. It fails (exit 1) when `BENCH_mapping.json`,
//! `BENCH_gnn.json`, `BENCH_pipeline.json`, or `BENCH_serve.json` is
//! missing, malformed, or lacks the entries the incremental-annealer,
//! batched-GNN, artifact round-trip, and serving-cache work is
//! benchmarked by — so a refactor that silently drops a bench
//! registration breaks verify, not just the numbers.

use lisa_bench::timing::bench_dir;

/// Mapping-suite entries every run — smoke or measure — must produce
/// (cheap tier).
const REQUIRED_MAPPING: &[&str] = &[
    "movement/fig4_3x3/snapshot_clone",
    "movement/fig4_3x3/journal",
    "portfolio/fig4_3x3/chains1",
    "portfolio/fig4_3x3/chains4",
    "movement/fig4_16x16/journal",
    "e2e/doitgen_16x16/greedy",
    "movement/fig4_32x32/journal",
    "e2e/doitgen_32x32/greedy",
    "filter/fig4_3x3/off",
    "filter/fig4_3x3/on",
    "strategy/doitgen_4x4/sa",
    "strategy/doitgen_4x4/mixed",
];

/// Distance-index footprint metrics the mapping suite must emit for the
/// big fabrics the landmark oracle serves.
const REQUIRED_MAPPING_METRICS: &[&str] = &[
    "distance/16x16_oracle_bytes",
    "distance/16x16_dense_bytes",
    "distance/32x32_oracle_bytes",
    "distance/32x32_dense_bytes",
    "filter/fig4_3x3/off_router_invocations",
    "filter/fig4_3x3/on_router_invocations",
    "filter/fig4_3x3/on_rejected",
    "filter/fig4_3x3/on_false_rejects",
    "strategy/fig9_4x4/mapped_sa",
    "strategy/fig9_4x4/mapped_mixed",
    "strategy/fig9_4x4/wins_constructive",
    "strategy/fig9_4x4/wins_sa",
    "strategy/fig9_4x4/wins_evolutionary",
    "strategy/doitgen_4x4/constructive_router_invocations",
    "strategy/doitgen_4x4/sa_router_invocations",
];

/// GNN-suite entries every run must produce: inference throughput for
/// each architecture on both the compiled-plan serving path and the
/// historical graph tape, plus one training epoch per architecture.
const REQUIRED_GNN: &[&str] = &[
    "schedule_order/predict_syr2k",
    "schedule_order/predict_syr2k_tape",
    "edge_mlp/predict",
    "edge_mlp/predict_tape",
    "spatial/predict",
    "spatial/predict_tape",
    "schedule_order/train_epoch_8",
    "edge_mlp/train_epoch_64",
    "spatial/train_epoch_48",
];

/// Pipeline-suite entries every run must produce: DFG generation plus
/// the two checkpoint-artifact round-trips resume depends on. (The
/// end-to-end pipeline entry is heavy tier and absent in smoke mode.)
const REQUIRED_PIPELINE: &[&str] = &[
    "stage/generate_dfgs_12",
    "artifacts/dfg_set_round_trip_12",
    "artifacts/dataset_round_trip_12",
];

/// Serve-suite entries every run must produce: per-tier response cost
/// and the load-generator replay. (The sustained-load entry is heavy
/// tier and absent in smoke mode.)
const REQUIRED_SERVE: &[&str] = &[
    "engine/hit_memory",
    "engine/hit_disk",
    "engine/miss_compute",
    "load/replay_24",
];

/// Service-level metric rows the serve suite must emit (the load
/// generator's numbers, captured via `Suite::metric` in both modes).
const REQUIRED_SERVE_METRICS: &[&str] = &[
    "load/hit_rate_pct",
    "load/p50_ms",
    "load/p99_ms",
    "load/mappings_per_sec",
];

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL: {msg}");
    std::process::exit(1);
}

/// Extracts the `median_ns` number from the result row for `name`.
/// The suite writes one row per line, so a line-oriented scan is exact.
fn median_ns_for<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&tag))?;
    let rest = line.split("\"median_ns\": ").nth(1)?;
    Some(rest.split([',', '}']).next()?.trim())
}

/// Extracts the `value` number from the metric row for `name` (metric
/// rows carry `"value"` where timing rows carry `"median_ns"`).
fn value_for<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"name\": \"{name}\"");
    let line = json
        .lines()
        .find(|l| l.contains(&tag) && l.contains("\"value\": "))?;
    let rest = line.split("\"value\": ").nth(1)?;
    Some(rest.split([',', '}']).next()?.trim())
}

/// Validates one suite file: header, mode, required timing entries with
/// finite positive medians, and required metric rows with finite
/// non-negative values. Returns the mode for the OK line.
fn check_suite(suite: &str, required: &[&str], required_metrics: &[&str]) -> &'static str {
    let path = format!("{}/BENCH_{suite}.json", bench_dir());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => fail(&format!(
            "{path} unreadable ({e}); did the bench targets run?"
        )),
    };
    if !json.contains(&format!("\"suite\": \"{suite}\"")) {
        fail(&format!("{path} lacks the suite header"));
    }
    let mode = if json.contains("\"mode\": \"measure\"") {
        "measure"
    } else if json.contains("\"mode\": \"smoke\"") {
        "smoke"
    } else {
        fail(&format!("{path} lacks a mode field"));
    };
    for name in required {
        let Some(ns) = median_ns_for(&json, name) else {
            fail(&format!("{path} is missing required entry {name}"));
        };
        match ns.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => {}
            _ => fail(&format!("entry {name} has malformed median_ns {ns:?}")),
        }
    }
    for name in required_metrics {
        let Some(v) = value_for(&json, name) else {
            fail(&format!("{path} is missing required metric {name}"));
        };
        match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x >= 0.0 => {}
            _ => fail(&format!("metric {name} has malformed value {v:?}")),
        }
    }
    mode
}

fn main() {
    let suites: [(&str, &[&str], &[&str]); 4] = [
        ("mapping", REQUIRED_MAPPING, REQUIRED_MAPPING_METRICS),
        ("gnn", REQUIRED_GNN, &[]),
        ("pipeline", REQUIRED_PIPELINE, &[]),
        ("serve", REQUIRED_SERVE, REQUIRED_SERVE_METRICS),
    ];
    for (suite, required, required_metrics) in suites {
        let mode = check_suite(suite, required, required_metrics);
        println!(
            "bench_check: OK (BENCH_{suite}.json, mode {mode}, {} required entries present)",
            required.len() + required_metrics.len()
        );
    }
}
