//! CI gate for the bench suite's JSON output.
//!
//! `scripts/verify.sh` runs the bench targets in smoke mode (via `cargo
//! test`), which writes `BENCH_<suite>.json` with single-shot timings,
//! then runs this binary. It fails (exit 1) when `BENCH_mapping.json`,
//! `BENCH_gnn.json`, `BENCH_pipeline.json`, or `BENCH_serve.json` is
//! missing, malformed, or lacks the entries the incremental-annealer,
//! batched-GNN, artifact round-trip, and serving-cache work is
//! benchmarked by — so a refactor that silently drops a bench
//! registration breaks verify, not just the numbers.

use lisa_bench::timing::bench_dir;

/// Mapping-suite entries every run — smoke or measure — must produce
/// (cheap tier).
const REQUIRED_MAPPING: &[&str] = &[
    "movement/fig4_3x3/snapshot_clone",
    "movement/fig4_3x3/journal",
    "portfolio/fig4_3x3/chains1",
    "portfolio/fig4_3x3/chains4",
];

/// GNN-suite entries every run must produce: inference throughput and
/// one training epoch for each of the three network architectures.
const REQUIRED_GNN: &[&str] = &[
    "schedule_order/predict_syr2k",
    "edge_mlp/predict",
    "spatial/predict",
    "schedule_order/train_epoch_8",
    "edge_mlp/train_epoch_64",
    "spatial/train_epoch_48",
];

/// Pipeline-suite entries every run must produce: DFG generation plus
/// the two checkpoint-artifact round-trips resume depends on. (The
/// end-to-end pipeline entry is heavy tier and absent in smoke mode.)
const REQUIRED_PIPELINE: &[&str] = &[
    "stage/generate_dfgs_12",
    "artifacts/dfg_set_round_trip_12",
    "artifacts/dataset_round_trip_12",
];

/// Serve-suite entries every run must produce: per-tier response cost
/// and the load-generator replay. (The sustained-load entry is heavy
/// tier and absent in smoke mode.)
const REQUIRED_SERVE: &[&str] = &[
    "engine/hit_memory",
    "engine/hit_disk",
    "engine/miss_compute",
    "load/replay_24",
];

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL: {msg}");
    std::process::exit(1);
}

/// Extracts the `median_ns` number from the result row for `name`.
/// The suite writes one row per line, so a line-oriented scan is exact.
fn median_ns_for<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&tag))?;
    let rest = line.split("\"median_ns\": ").nth(1)?;
    Some(rest.split([',', '}']).next()?.trim())
}

/// Validates one suite file: header, mode, and required entries with
/// finite positive medians. Returns the mode for the OK line.
fn check_suite(suite: &str, required: &[&str]) -> &'static str {
    let path = format!("{}/BENCH_{suite}.json", bench_dir());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => fail(&format!(
            "{path} unreadable ({e}); did the bench targets run?"
        )),
    };
    if !json.contains(&format!("\"suite\": \"{suite}\"")) {
        fail(&format!("{path} lacks the suite header"));
    }
    let mode = if json.contains("\"mode\": \"measure\"") {
        "measure"
    } else if json.contains("\"mode\": \"smoke\"") {
        "smoke"
    } else {
        fail(&format!("{path} lacks a mode field"));
    };
    for name in required {
        let Some(ns) = median_ns_for(&json, name) else {
            fail(&format!("{path} is missing required entry {name}"));
        };
        match ns.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => {}
            _ => fail(&format!("entry {name} has malformed median_ns {ns:?}")),
        }
    }
    mode
}

fn main() {
    let suites = [
        ("mapping", REQUIRED_MAPPING),
        ("gnn", REQUIRED_GNN),
        ("pipeline", REQUIRED_PIPELINE),
        ("serve", REQUIRED_SERVE),
    ];
    for (suite, required) in suites {
        let mode = check_suite(suite, required);
        println!(
            "bench_check: OK (BENCH_{suite}.json, mode {mode}, {} required entries present)",
            required.len()
        );
    }
}
