//! CI gate for the bench suite's JSON output.
//!
//! `scripts/verify.sh` runs the bench targets in smoke mode (via `cargo
//! test`), which writes `BENCH_<suite>.json` with single-shot timings,
//! then runs this binary. It fails (exit 1) when `BENCH_mapping.json` is
//! missing, malformed, or lacks the movement/portfolio entries the
//! incremental-annealer work is benchmarked by — so a refactor that
//! silently drops a bench registration breaks verify, not just the
//! numbers.

use lisa_bench::timing::bench_dir;

/// Entries every run — smoke or measure — must produce (cheap tier).
const REQUIRED: &[&str] = &[
    "movement/fig4_3x3/snapshot_clone",
    "movement/fig4_3x3/journal",
    "portfolio/fig4_3x3/chains1",
    "portfolio/fig4_3x3/chains4",
];

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL: {msg}");
    std::process::exit(1);
}

/// Extracts the `median_ns` number from the result row for `name`.
/// The suite writes one row per line, so a line-oriented scan is exact.
fn median_ns_for<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&tag))?;
    let rest = line.split("\"median_ns\": ").nth(1)?;
    Some(rest.split([',', '}']).next()?.trim())
}

fn main() {
    let path = format!("{}/BENCH_mapping.json", bench_dir());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => fail(&format!(
            "{path} unreadable ({e}); did the bench targets run?"
        )),
    };
    if !json.contains("\"suite\": \"mapping\"") {
        fail(&format!("{path} lacks the suite header"));
    }
    let mode = if json.contains("\"mode\": \"measure\"") {
        "measure"
    } else if json.contains("\"mode\": \"smoke\"") {
        "smoke"
    } else {
        fail(&format!("{path} lacks a mode field"));
    };
    for name in REQUIRED {
        let Some(ns) = median_ns_for(&json, name) else {
            fail(&format!("{path} is missing required entry {name}"));
        };
        match ns.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => {}
            _ => fail(&format!("entry {name} has malformed median_ns {ns:?}")),
        }
    }
    println!(
        "bench_check: OK ({path}, mode {mode}, {} required entries present)",
        REQUIRED.len()
    );
}
