//! Extension experiment: mapper scalability across CGRA sizes. The paper
//! argues LISA "scales with spatial accelerators" (§VI-A); this binary
//! sweeps 2×2 → 6×6 arrays on one representative kernel and reports II
//! and compilation time per mapper, exposing where each approach falls
//! over as the search space grows.

use lisa_bench::Harness;
use lisa_mapper::exact::ExactMapper;
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::SaMapper;

fn main() {
    let harness = Harness::from_env();
    let dfg = lisa_dfg::polybench::kernel("gemm").expect("built-in kernel");
    println!("Extension: gemm across CGRA sizes (II / compile time)");
    println!("{:<6} {:>16} {:>16} {:>16}", "array", "ILP", "SA", "LISA");
    for size in 2..=6 {
        let acc = lisa_arch::Accelerator::cgra(format!("{size}x{size}"), size, size);
        let search = IiSearch {
            max_ii: Some(harness.ii_cap()),
        };

        let mut ilp = ExactMapper::new(harness.exact_params());
        let ilp_outcome = search.run(&mut ilp, &dfg, &acc);

        let mut sa = SaMapper::new(harness.sa_params(), harness.seed());
        let sa_outcome = search.run(&mut sa, &dfg, &acc);

        let lisa = harness.train_lisa(&acc);
        let (lisa_outcome, _) = lisa.map_capped(&dfg, &acc, harness.ii_cap());

        let fmt = |o: &lisa_mapper::MappingOutcome| {
            format!(
                "{}@{:>7.2}s",
                o.ii.map_or("fail".to_string(), |v| format!("II{v}")),
                o.compile_time.as_secs_f64()
            )
        };
        println!(
            "{:<6} {:>16} {:>16} {:>16}",
            acc.name(),
            fmt(&ilp_outcome),
            fmt(&sa_outcome),
            fmt(&lisa_outcome)
        );
    }
}
