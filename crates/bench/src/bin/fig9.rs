//! Figure 9 — mapping quality (II) of ILP, SA, and LISA across the six
//! architectures (paper §VI-A).
//!
//! Usage: `fig9 [3x3|4x4|4x4-lr|4x4-lm|4x4-unroll|8x8-unroll|systolic|all]`
//! (default `all`). An II of 0 means the method could not map the
//! benchmark; the systolic variant prints ok/x as in Fig. 9g.

use lisa_bench::{tables, CaseResult, Harness};
use lisa_dfg::{polybench, Dfg};

fn benchmarks_for(variant: &str) -> Vec<Dfg> {
    match variant {
        "4x4-unroll" => polybench::unrolled_kernels(&polybench::UNROLLED_4X4_NAMES),
        "8x8-unroll" => polybench::unrolled_kernels(&polybench::UNROLLED_8X8_NAMES),
        "systolic" => polybench::all_cores(),
        _ => polybench::all_kernels(),
    }
}

fn arch_key_for(variant: &str) -> &str {
    match variant {
        "4x4-unroll" => "4x4",
        "8x8-unroll" => "8x8",
        other => other,
    }
}

fn subfigure(variant: &str) -> &str {
    match variant {
        "3x3" => "9a",
        "4x4" => "9b",
        "4x4-lr" => "9c",
        "4x4-unroll" => "9d",
        "4x4-lm" => "9e",
        "8x8-unroll" => "9f",
        "systolic" => "9g",
        _ => "9",
    }
}

fn run_variant(harness: &Harness, variant: &str) {
    let acc = Harness::architecture(arch_key_for(variant));
    let lisa = harness.train_lisa(&acc);
    let benches = benchmarks_for(variant);

    println!();
    println!(
        "Figure {}: {} on {} ({} benchmarks)",
        subfigure(variant),
        if variant == "systolic" {
            "mapping success"
        } else {
            "II comparison"
        },
        acc.name(),
        benches.len()
    );
    println!("{}", tables::ii_header());
    let mut cases: Vec<CaseResult> = Vec::new();
    for dfg in &benches {
        let case = harness.run_case(dfg, &acc, &lisa);
        if variant == "systolic" {
            println!("{}", tables::tick_row(&case));
        } else {
            println!("{}", tables::ii_row(&case));
        }
        cases.push(case);
    }
    let (ilp, sa, lisa_n) = tables::mapped_counts(&cases);
    println!(
        "mapped: ILP {ilp}/{n}  SA {sa}/{n}  LISA {lisa_n}/{n}",
        n = cases.len()
    );
}

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let harness = Harness::from_env();
    let variants = [
        "3x3",
        "4x4",
        "4x4-lr",
        "4x4-unroll",
        "4x4-lm",
        "8x8-unroll",
        "systolic",
    ];
    if variant == "all" {
        for v in variants {
            run_variant(&harness, v);
        }
    } else {
        assert!(
            variants.contains(&variant.as_str()),
            "unknown variant {variant:?}; expected one of {variants:?} or 'all'"
        );
        run_variant(&harness, &variant);
    }
}
