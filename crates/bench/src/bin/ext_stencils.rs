//! Extension experiment: workload classes beyond the paper's twelve
//! kernels — stencils (jacobi-1d/2d), a fused rank-1-update (gemver), and
//! a triangular solve with division (trisolv). Checks that the trained
//! label models generalise to structurally different applications without
//! retraining (the paper's portability story is per-*accelerator*, not
//! per-application).

use lisa_bench::Harness;
use lisa_dfg::polybench;

fn main() {
    let harness = Harness::from_env();
    let acc = Harness::architecture("4x4");
    let lisa = harness.train_lisa(&acc);

    println!();
    println!("Extension: unseen workload classes on 4x4 (II; 0 = unmapped)");
    println!("{:<12} {:>6} {:>6}", "kernel", "SA", "LISA");
    for dfg in polybench::extra_kernels() {
        let sa = harness.median_sa(&dfg, &acc);
        let (l, _) = lisa.map_capped(&dfg, &acc, harness.ii_cap());
        println!(
            "{:<12} {:>6} {:>6}",
            dfg.name(),
            sa.ii.unwrap_or(0),
            l.ii.unwrap_or(0)
        );
    }
}
