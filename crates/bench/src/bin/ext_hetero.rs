//! Extension experiment (beyond the paper's six architectures): portability
//! to a *heterogeneous* 4×4 CGRA in the REVAMP style — multipliers only on
//! checkerboard PEs. The paper motivates LISA with exactly this kind of
//! generated accelerator diversity (§I); this binary demonstrates that
//! retraining is the only change needed.

use lisa_arch::{Accelerator, Heterogeneity};
use lisa_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    let acc = Accelerator::cgra("4x4-het", 4, 4).with_heterogeneity(Heterogeneity::CheckerboardMul);
    let lisa = harness.train_lisa(&acc);

    println!();
    println!("Extension: heterogeneous 4x4 CGRA (multipliers on 8/16 PEs)");
    println!("{:<12} {:>6} {:>6}", "benchmark", "SA", "LISA");
    let mut counts = (0usize, 0usize);
    let mut sa_sum = 0u32;
    let mut lisa_sum = 0u32;
    for dfg in lisa_dfg::polybench::all_kernels() {
        let sa = harness.median_sa(&dfg, &acc);
        let (lisa_outcome, _) = lisa.map_capped(&dfg, &acc, harness.ii_cap());
        println!(
            "{:<12} {:>6} {:>6}",
            dfg.name(),
            sa.ii.unwrap_or(0),
            lisa_outcome.ii.unwrap_or(0)
        );
        counts.0 += usize::from(sa.mapped());
        counts.1 += usize::from(lisa_outcome.mapped());
        sa_sum += sa.ii.unwrap_or(17);
        lisa_sum += lisa_outcome.ii.unwrap_or(17);
    }
    println!(
        "mapped: SA {}/12  LISA {}/12   total II: SA {sa_sum}  LISA {lisa_sum}",
        counts.0, counts.1
    );
}
