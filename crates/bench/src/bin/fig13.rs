//! Figure 13 — movement budget vs. guidance (paper §VI-C): vanilla SA,
//! SA-M (10× movements per temperature), and LISA on the 4×4 baseline
//! CGRA, for both the original and the unrolled PolyBench DFGs.

use lisa_bench::Harness;
use lisa_dfg::polybench;
use lisa_mapper::SaParams;

fn main() {
    let harness = Harness::from_env();
    let acc = Harness::architecture("4x4");
    let lisa = harness.train_lisa(&acc);

    let mut benches = polybench::all_kernels();
    benches.extend(polybench::unrolled_kernels(&polybench::UNROLLED_4X4_NAMES));

    println!();
    println!("Figure 13 (4x4 baseline CGRA): SA vs SA-M (10x movements) vs LISA");
    println!(
        "{:<14} {:>6} {:>6} {:>6}",
        "benchmark", "SA", "SA-M", "LISA"
    );
    let sa_m_params = SaParams {
        moves_per_temp: harness.sa_params().moves_per_temp * 10,
        ..harness.sa_params()
    };
    let mut counts = (0usize, 0usize, 0usize);
    let mut times = (0.0f64, 0.0f64, 0.0f64);
    let total = benches.len();
    for dfg in &benches {
        let sa = harness.median_sa(dfg, &acc);
        let sa_m = harness.median_sa_with(dfg, &acc, &sa_m_params);
        let (lisa_outcome, _) = lisa.map_capped(dfg, &acc, harness.ii_cap());
        println!(
            "{:<14} {:>6} {:>6} {:>6}",
            dfg.name(),
            sa.ii.unwrap_or(0),
            sa_m.ii.unwrap_or(0),
            lisa_outcome.ii.unwrap_or(0)
        );
        counts.0 += usize::from(sa.mapped());
        counts.1 += usize::from(sa_m.mapped());
        counts.2 += usize::from(lisa_outcome.mapped());
        times.0 += sa.compile_time.as_secs_f64();
        times.1 += sa_m.compile_time.as_secs_f64();
        times.2 += lisa_outcome.compile_time.as_secs_f64();
    }
    println!(
        "mapped: SA {}/{total}  SA-M {}/{total}  LISA {}/{total}",
        counts.0, counts.1, counts.2
    );
    // The movement budget is not free: the paper's point is that guidance,
    // not more random movements, is the scalable lever.
    println!(
        "total compile time: SA {:.1}s  SA-M {:.1}s  LISA {:.1}s",
        times.0, times.1, times.2
    );
}
