//! Figure 12 — effectiveness of the temporal-mapping-distance label
//! (label 4) used as routing priority alone (paper §VI-C).
//!
//! Compares vanilla SA, SA with label-4 routing priority ("SA+RP"), and
//! full LISA on the 4×4 baseline CGRA and the 4×4 CGRA with less routing
//! resources.

use lisa_bench::Harness;
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::LabelSaMapper;

fn main() {
    let harness = Harness::from_env();
    for key in ["4x4", "4x4-lr"] {
        let acc = Harness::architecture(key);
        let lisa = harness.train_lisa(&acc);
        println!();
        println!("Figure 12 ({key}): routing-priority ablation (II; 0 = unmapped)");
        println!(
            "{:<12} {:>6} {:>7} {:>6}",
            "benchmark", "SA", "SA+RP", "LISA"
        );
        let mut counts = (0usize, 0usize, 0usize);
        for dfg in lisa_dfg::polybench::all_kernels() {
            let sa = harness.median_sa(&dfg, &acc);

            // SA + routing priority: vanilla SA movements, label-4 routing
            // order, using the GNN-predicted labels.
            let labels = lisa.predict_labels(&dfg);
            let mut rp =
                LabelSaMapper::routing_priority_only(labels, harness.sa_params(), harness.seed());
            let rp_outcome = IiSearch {
                max_ii: Some(harness.ii_cap()),
            }
            .run(&mut rp, &dfg, &acc);

            let (lisa_outcome, _) = lisa.map_capped(&dfg, &acc, harness.ii_cap());

            println!(
                "{:<12} {:>6} {:>7} {:>6}",
                dfg.name(),
                sa.ii.unwrap_or(0),
                rp_outcome.ii.unwrap_or(0),
                lisa_outcome.ii.unwrap_or(0)
            );
            counts.0 += usize::from(sa.mapped());
            counts.1 += usize::from(rp_outcome.mapped());
            counts.2 += usize::from(lisa_outcome.mapped());
        }
        println!(
            "mapped: SA {}/12  SA+RP {}/12  LISA {}/12",
            counts.0, counts.1, counts.2
        );
    }
}
