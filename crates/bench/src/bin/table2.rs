//! Table II — GNN label prediction accuracy across the six architectures
//! (paper §VI-B). For each accelerator, synthetic DFGs are labelled by the
//! iterative mapping method, the four label networks are trained, and
//! accuracy is measured on a held-out graph split using the paper's
//! per-label tolerances (exact / ±1 / ±1 / ±2).

use lisa_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    println!("Table II: GNN label prediction accuracy");
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7}",
        "architecture", "label1", "label2", "label3", "label4"
    );
    for key in ["4x4", "3x3", "4x4-lr", "4x4-lm", "8x8", "systolic"] {
        let acc = Harness::architecture(key);
        let lisa = harness.train_lisa(&acc);
        let stats = lisa.stats();
        println!("{}", stats.accuracy.table_row(acc.name()));
        eprintln!(
            "  [{key}] training DFGs kept {}/{} (holdout {})",
            stats.dfgs_kept, stats.dfgs_generated, stats.dfgs_holdout
        );
    }
    println!();
    println!("paper reference (Table II):");
    println!("4x4 baseline                   0.788   0.856   0.932   0.992");
    println!("3x3 baseline                   0.648   0.939   0.992   0.938");
    println!("4x4 less routing               0.758   0.885   0.951   0.977");
    println!("4x4 less memory                0.738   0.852   0.941   0.988");
    println!("8x8 baseline                   0.685   0.716   0.914   0.990");
    println!("systolic accelerator           0.759   0.768   0.907   1.000");
}
