//! Extension experiment: interconnect richness. Compares the classic mesh
//! against a HyCUBE-style single-cycle multi-hop network (radius 2) on a
//! 4×4 CGRA. Richer routing shrinks the search problem, so all mappers
//! improve — and the gap between guided and unguided search narrows,
//! matching the paper's observation that constrained routing is where the
//! global view pays off most.

use lisa_arch::{Accelerator, Interconnect};
use lisa_bench::Harness;
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::SaMapper;

fn main() {
    let harness = Harness::from_env();
    let mesh = Accelerator::cgra("4x4-mesh", 4, 4);
    let hycube =
        Accelerator::cgra("4x4-hop2", 4, 4).with_interconnect(Interconnect::MultiHop { radius: 2 });

    println!("Extension: mesh vs multi-hop interconnect (vanilla SA II)");
    println!("{:<12} {:>8} {:>8}", "benchmark", "mesh", "hop-2");
    let search = IiSearch {
        max_ii: Some(harness.ii_cap()),
    };
    let mut mesh_sum = 0u32;
    let mut hop_sum = 0u32;
    for dfg in lisa_dfg::polybench::all_kernels() {
        let mut sa1 = SaMapper::new(harness.sa_params(), harness.seed());
        let m = search.run(&mut sa1, &dfg, &mesh);
        let mut sa2 = SaMapper::new(harness.sa_params(), harness.seed());
        let h = search.run(&mut sa2, &dfg, &hycube);
        println!(
            "{:<12} {:>8} {:>8}",
            dfg.name(),
            m.ii.unwrap_or(0),
            h.ii.unwrap_or(0)
        );
        mesh_sum += m.ii.unwrap_or(17);
        hop_sum += h.ii.unwrap_or(17);
    }
    println!("total II: mesh {mesh_sum}  hop-2 {hop_sum} (lower is better)");
}
