//! Predict-then-verify A/B — router work saved by the learned movement
//! filter on the Fig. 9 benchmark suite (EXPERIMENTS.md "Movement
//! filter").
//!
//! Usage: `filter_ab [arch-key]` (default `4x4`).
//!
//! Phase 1 captures `(movement features, Δcost)` pairs by running vanilla
//! SA once per benchmark with a movement recorder attached, and trains
//! one movement predictor per benchmark from its own capture — the
//! deployment shape: capture is a free by-product of mapping a kernel,
//! and the predictor serves later mappings of that same kernel (the
//! repeat-request pattern the result cache exists for). A predictor
//! pooled across all twelve benchmarks keeps the aggregate reduction but
//! mis-scores outliers (atax's II-2 search regressed under it), so the
//! per-kernel shape is also the quality-safe one.
//! Phase 2 runs each benchmark's full II search with seeds disjoint from
//! the capture runs, five per arm (the paper's §VI median-of-runs SA
//! methodology, widened from three to five to damp seed noise),
//! interleaved off/on per seed so the two arms see the same machine
//! state. It prints the median II, total router
//! invocations, wall time, and the audited false-reject rate for both
//! arms. The off arm is byte-identical to the pre-filter binary; the on
//! arm must reach an equal-or-better median II — quality is exact by
//! construction on accepted states, so any II change comes from the
//! altered search trajectory (the gate skips the accept draw of
//! rejected proposals, desynchronising the RNG stream), not from
//! mispriced mappings.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use lisa_bench::Harness;
use lisa_dfg::polybench;
use lisa_events::{EventSink, Observer, PipelineEvent};
use lisa_gnn::TrainConfig;
use lisa_labels::movement::{MovementPredictor, MovementRecorder, MovementSet};
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{FilterStats, MovementScorer, SaMapper};

/// Sums every `SaFilterSummary` across one run (all IIs, all chains).
#[derive(Debug, Default)]
struct Totals(Mutex<FilterStats>);

impl Totals {
    fn take(&self) -> FilterStats {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        std::mem::take(&mut *guard)
    }
}

impl Observer for Totals {
    fn event(&self, event: &PipelineEvent) {
        if let PipelineEvent::SaFilterSummary {
            proposals,
            admitted,
            rejected,
            audited,
            false_rejects,
            router_invocations,
            audit_router_invocations,
            ..
        } = event
        {
            let mut guard = match self.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.merge(&FilterStats {
                proposals: *proposals,
                admitted: *admitted,
                rejected: *rejected,
                audited: *audited,
                false_rejects: *false_rejects,
                router_invocations: *router_invocations,
                audit_router_invocations: *audit_router_invocations,
            });
        }
    }
}

fn main() {
    let arch_key = std::env::args().nth(1).unwrap_or_else(|| "4x4".to_string());
    let harness = Harness::from_env();
    let acc = Harness::architecture(&arch_key);
    let benches = polybench::all_kernels();
    let search = IiSearch {
        max_ii: Some(harness.ii_cap()),
    };
    let capture_seed = harness.seed() + 40_000;
    let ab_seed = harness.seed();

    // Phase 1: per benchmark, capture pairs from one observed run and
    // train that benchmark's predictor.
    eprintln!(
        "capturing movement pairs on {} ({} benchmarks)...",
        acc.name(),
        benches.len()
    );
    let config = TrainConfig {
        epochs: 120,
        ..TrainConfig::paper()
    };
    let mut predictors: Vec<Arc<MovementPredictor>> = Vec::new();
    for dfg in &benches {
        let recorder = Arc::new(MovementRecorder::new());
        let mut sa = SaMapper::new(harness.sa_params(), capture_seed)
            .with_observer(EventSink::new(Arc::clone(&recorder) as Arc<dyn Observer>));
        let _ = search.run(&mut sa, dfg, &acc);
        let set: MovementSet = recorder.snapshot();
        let improving = set.pairs.iter().filter(|p| p.delta_cost <= 0.0).count();
        let (predictor, report) =
            MovementPredictor::train(&set, &config, ab_seed).expect("capture yields pairs");
        eprintln!(
            "  {:<12} {} pairs ({improving} improving): final loss {:.6}, threshold {:.4}",
            dfg.name(),
            set.len(),
            report.final_loss(),
            predictor.threshold()
        );
        predictors.push(Arc::new(predictor));
    }

    // Phase 2: interleaved A/B per benchmark, median of five seeds per
    // arm (the paper's SA methodology, widened to five), seeds disjoint
    // from the capture run.
    let totals = Arc::new(Totals::default());
    let sink = EventSink::new(Arc::clone(&totals) as Arc<dyn Observer>);
    println!();
    println!(
        "Movement filter A/B on {} (seeds {ab_seed}+, median of 5, II cap {})",
        acc.name(),
        harness.ii_cap()
    );
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12} {:>6} {:>9} {:>9}",
        "benchmark", "II off", "II on", "router off", "router on", "ratio", "time off", "time on"
    );
    let mut sum_off = FilterStats::default();
    let mut sum_on = FilterStats::default();
    let mut ok = true;
    for (dfg, predictor) in benches.iter().zip(&predictors) {
        let run = |seed: u64, filter: Option<Arc<dyn MovementScorer>>| {
            let mut sa = SaMapper::new(harness.sa_params(), seed).with_observer(sink.clone());
            if let Some(f) = filter {
                sa = sa.with_movement_filter(f);
            }
            let start = Instant::now();
            let (outcome, mapping) = search.run_with_mapping(&mut sa, dfg, &acc);
            let elapsed = start.elapsed();
            if let Some(m) = &mapping {
                m.verify().expect("mapping invariants hold");
            }
            (outcome, totals.take(), elapsed)
        };
        let mut off = FilterStats::default();
        let mut on = FilterStats::default();
        let mut off_iis = Vec::new();
        let mut on_iis = Vec::new();
        let mut off_time = std::time::Duration::ZERO;
        let mut on_time = std::time::Duration::ZERO;
        for attempt in 0..5 {
            let seed = ab_seed + attempt * 101;
            let (o, stats, t) = run(seed, None);
            off.merge(&stats);
            off_iis.push(o.ii.unwrap_or(u32::MAX));
            off_time += t;
            let (o, stats, t) = run(seed, Some(Arc::clone(predictor) as Arc<dyn MovementScorer>));
            on.merge(&stats);
            on_iis.push(o.ii.unwrap_or(u32::MAX));
            on_time += t;
        }
        off_iis.sort_unstable();
        on_iis.sort_unstable();
        let (ii_off, ii_on) = (off_iis[2], on_iis[2]);
        sum_off.merge(&off);
        sum_on.merge(&on);
        if ii_on > ii_off {
            ok = false;
        }
        println!(
            "{:<12} {:>6} {:>6} {:>12} {:>12} {:>5.2}x {:>8.2?} {:>8.2?}",
            dfg.name(),
            if ii_off == u32::MAX { 0 } else { ii_off },
            if ii_on == u32::MAX { 0 } else { ii_on },
            off.router_invocations,
            on.router_invocations,
            off.router_invocations as f64 / on.router_invocations.max(1) as f64,
            off_time,
            on_time
        );
    }
    println!();
    println!(
        "totals: router invocations {} -> {} ({:.2}x fewer), proposals {} -> {} \
         (admitted {}, rejected {}), audited {} with {} false rejects ({:.1}%)",
        sum_off.router_invocations,
        sum_on.router_invocations,
        sum_off.router_invocations as f64 / sum_on.router_invocations.max(1) as f64,
        sum_off.proposals,
        sum_on.proposals,
        sum_on.admitted,
        sum_on.rejected,
        sum_on.audited,
        sum_on.false_rejects,
        100.0 * sum_on.false_rejects as f64 / sum_on.audited.max(1) as f64
    );
    if !ok {
        println!("WARNING: some benchmark regressed median II with the filter on");
    }
}
