//! Workload characterisation: structural statistics of every benchmark
//! DFG used in the evaluation (full kernels, unrolled variants, and
//! systolic compute cores). Useful for sanity-checking that the hand-built
//! DFGs land in the ranges real CGRA compilers handle.

use lisa_dfg::polybench;
use lisa_dfg::stats::DfgStats;

fn print_group(title: &str, dfgs: &[lisa_dfg::Dfg]) {
    println!();
    println!("{title}");
    println!(
        "{:<14} {:>5} {:>6} {:>4} {:>4} {:>7} {:>4} {:>4} {:>6}",
        "kernel", "nodes", "edges", "rec", "cp", "fanout", "mem", "mul", "width"
    );
    for dfg in dfgs {
        let s = DfgStats::of(dfg);
        println!(
            "{:<14} {:>5} {:>6} {:>4} {:>4} {:>3}/{:<3.1} {:>4} {:>4} {:>6}",
            s.name,
            s.nodes,
            s.data_edges,
            s.recurrence_edges,
            s.critical_path,
            s.max_out_degree,
            s.mean_out_degree,
            s.memory_ops,
            s.multiplies,
            s.max_level_width
        );
    }
}

fn main() {
    print_group(
        "PolyBench kernels (Fig. 9a/b/c/e)",
        &polybench::all_kernels(),
    );
    print_group(
        "Unrolled x2 (Fig. 9d/f)",
        &polybench::unrolled_kernels(&polybench::UNROLLED_8X8_NAMES),
    );
    print_group("Systolic compute cores (Fig. 9g)", &polybench::all_cores());
}
