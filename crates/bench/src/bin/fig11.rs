//! Figure 11 — compilation-time comparison on the 3×3 and 4×4 baseline
//! CGRAs (paper §VI-A). Failures (marked `*`) report the termination time,
//! exactly as the paper does.

use lisa_bench::{tables, CaseResult, Harness};

fn main() {
    let harness = Harness::from_env();
    for key in ["3x3", "4x4"] {
        let acc = Harness::architecture(key);
        let lisa = harness.train_lisa(&acc);
        println!();
        println!("Figure 11 ({key} baseline CGRA): compilation time");
        println!(
            "{:<12} {:>10} {:>10} {:>10}",
            "benchmark", "ILP", "SA", "LISA"
        );
        let mut cases: Vec<CaseResult> = Vec::new();
        for dfg in lisa_dfg::polybench::all_kernels() {
            let case = harness.run_case(&dfg, &acc, &lisa);
            println!("{}", tables::time_row(&case));
            cases.push(case);
        }
        let vs_ilp = tables::geomean_speedup(&cases, |c| c.ilp.compile_time);
        let vs_sa = tables::geomean_speedup(&cases, |c| c.sa.compile_time);
        println!(
            "LISA compilation-time reduction (geomean): {vs_ilp:.0}x vs ILP, \
             {vs_sa:.0}x vs SA (paper: 594x/17x on 3x3, 724x/12x on 4x4)"
        );
    }
}
