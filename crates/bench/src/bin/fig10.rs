//! Figure 10 — power efficiency (MOPS/W normalised to LISA) of ILP, SA,
//! and LISA on the 3×3 and 4×4 baseline CGRAs (paper §VI-A).
//!
//! The power numbers come from the analytical activity-based model
//! (`lisa_arch::power`; see DESIGN.md "Substitutions"), so only the
//! *relative* efficiencies are meaningful — which is exactly what the
//! paper's normalised figure reports.

use lisa_arch::power::PowerModel;
use lisa_bench::{CaseResult, Harness};

fn main() {
    let harness = Harness::from_env();
    let pm = PowerModel::default();

    for key in ["3x3", "4x4"] {
        let acc = Harness::architecture(key);
        let lisa = harness.train_lisa(&acc);
        println!();
        println!("Figure 10 ({key} baseline CGRA): MOPS/W normalised to LISA");
        println!("{:<12} {:>8} {:>8} {:>8}", "benchmark", "ILP", "SA", "LISA");
        let mut cases: Vec<CaseResult> = Vec::new();
        let mut sa_ratios: Vec<f64> = Vec::new();
        for dfg in lisa_dfg::polybench::all_kernels() {
            let case = harness.run_case(&dfg, &acc, &lisa);
            let eff = |o: &lisa_mapper::MappingOutcome| o.mops_per_watt(&acc, &pm);
            let lisa_eff = eff(&case.lisa);
            let norm = |v: Option<f64>| match (v, lisa_eff) {
                (Some(x), Some(l)) if l > 0.0 => format!("{:>8.2}", x / l),
                _ => format!("{:>8}", "-"),
            };
            println!(
                "{:<12} {} {} {:>8}",
                case.benchmark,
                norm(eff(&case.ilp)),
                norm(eff(&case.sa)),
                if lisa_eff.is_some() { "1.00" } else { "-" }
            );
            if let (Some(s), Some(l)) = (eff(&case.sa), lisa_eff) {
                if s > 0.0 {
                    sa_ratios.push(l / s);
                }
            }
            cases.push(case);
        }
        if !sa_ratios.is_empty() {
            let avg = sa_ratios.iter().sum::<f64>() / sa_ratios.len() as f64;
            println!(
                "LISA vs SA average power-efficiency advantage: {avg:.2}x \
                 (paper: 1.58x on 3x3, 1.4x on 4x4)"
            );
        }
        let (ilp, sa, lisa_n) = lisa_bench::tables::mapped_counts(&cases);
        println!(
            "mapped: ILP {ilp}/{n}  SA {sa}/{n}  LISA {lisa_n}/{n}",
            n = cases.len()
        );
    }
}
