//! Lightweight in-repo micro-benchmark harness — the hermetic replacement
//! for `criterion`.
//!
//! Each `benches/*.rs` target builds a [`Suite`], registers closures, and
//! calls [`Suite::finish`]. Under `cargo bench` (cargo passes `--bench` to
//! `harness = false` targets) every benchmark is measured: a time-boxed
//! warmup estimates the per-iteration cost, then N timed samples of many
//! iterations each are taken and the **median ns/iter** is reported —
//! medians resist scheduler noise far better than means. Results are
//! printed and written as `BENCH_<suite>.json` (under `target/bench/`, or
//! `$LISA_BENCH_DIR`), one file per suite, so successive runs form a
//! machine-readable trajectory.
//!
//! Under `cargo test` (no `--bench` flag) the suite runs in *smoke mode*:
//! each cheap benchmark body executes once as a correctness check (and is
//! recorded as a single-iteration measurement) and [`Suite::bench_heavy`]
//! registrations are skipped, keeping tier-1 verify fast while still
//! compiling and exercising the bench code offline. Both modes write
//! `BENCH_<suite>.json` — the `"mode"` field says how trustworthy the
//! numbers are — so CI can check the file exists and is well-formed
//! without paying for a full measurement run.

use std::time::{Duration, Instant};

/// Samples per benchmark in the default (cheap) tier.
const SAMPLES: usize = 11;
/// Samples per benchmark in the heavy tier (multi-second bodies).
const HEAVY_SAMPLES: usize = 5;
/// Warmup budget before measurement.
const WARMUP: Duration = Duration::from_millis(100);
/// Target wall-clock per timed sample.
const SAMPLE_TIME: Duration = Duration::from_millis(50);

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name, e.g. `router/adjacent_4x4`.
    pub name: String,
    /// Median nanoseconds per iteration over all samples.
    pub median_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

/// One recorded service-level number (a value with a unit, not a
/// timing): cache-hit rates, latency percentiles, throughputs. Metrics
/// ride in the same `BENCH_<suite>.json` as the timing rows so their
/// trajectory across PRs is captured by the same machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, e.g. `load/hit_rate_pct`.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label, e.g. `percent`, `ms`, `per_sec`.
    pub unit: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// One iteration per cheap benchmark, heavies skipped (`cargo test`).
    Smoke,
}

/// A named collection of benchmarks sharing one output file.
#[derive(Debug)]
pub struct Suite {
    name: String,
    mode: Mode,
    results: Vec<Measurement>,
    metrics: Vec<Metric>,
}

impl Suite {
    /// Creates a suite, selecting the mode from the process arguments the
    /// way criterion did: `cargo bench` passes `--bench`, `cargo test`
    /// does not.
    pub fn from_args(name: &str) -> Suite {
        let measure = std::env::args().any(|a| a == "--bench");
        Suite::new(name, if measure { Mode::Measure } else { Mode::Smoke })
    }

    fn new(name: &str, mode: Mode) -> Suite {
        Suite {
            name: name.to_string(),
            mode,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a service-level metric in both modes (the value comes
    /// from the caller's own run, so unlike timings it is as real in
    /// smoke mode as in measure mode).
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) {
        println!("metric {}/{name}: {value:.3} {unit}", self.name);
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    }

    /// Registers and runs a cheap benchmark (sub-millisecond to
    /// low-millisecond bodies). In smoke mode the body runs once and is
    /// recorded as a single-iteration measurement so the suite's JSON
    /// still lists every cheap entry.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        match self.mode {
            Mode::Smoke => {
                let t = Instant::now();
                f();
                let ns = t.elapsed().as_nanos() as f64;
                println!("smoke {}/{name}: ok", self.name);
                self.results.push(Measurement {
                    name: name.to_string(),
                    median_ns: ns,
                    samples: 1,
                    iters_per_sample: 1,
                });
            }
            Mode::Measure => {
                let m = measure(name, SAMPLES, &mut f);
                print_measurement(&self.name, &m);
                self.results.push(m);
            }
        }
    }

    /// Registers a heavy benchmark (bodies taking seconds, e.g. full
    /// mapper runs). Fewer samples, one warmup iteration, and skipped
    /// entirely in smoke mode to keep `cargo test` fast.
    pub fn bench_heavy(&mut self, name: &str, mut f: impl FnMut()) {
        match self.mode {
            Mode::Smoke => {
                println!("smoke {}/{name}: skipped (heavy)", self.name);
            }
            Mode::Measure => {
                let m = measure(name, HEAVY_SAMPLES, &mut f);
                print_measurement(&self.name, &m);
                self.results.push(m);
            }
        }
    }

    /// Finalises the suite: writes `BENCH_<suite>.json` in both modes
    /// (smoke runs stamp `"mode": "smoke"` so tooling never mistakes a
    /// single-shot timing for a real measurement).
    pub fn finish(self) {
        let dir = bench_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("[bench] cannot create {dir}: {e}");
            return;
        }
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("[bench] wrote {path}"),
            Err(e) => eprintln!("[bench] cannot write {path}: {e}"),
        }
    }

    /// The suite's results as a JSON document (hand-rolled: the hermetic
    /// build has no serde).
    pub fn to_json(&self) -> String {
        let mode = match self.mode {
            Mode::Measure => "measure",
            Mode::Smoke => "smoke",
        };
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                escape(&m.name),
                m.median_ns,
                m.samples,
                m.iters_per_sample,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{}\n",
                escape(&m.name),
                m.value,
                escape(&m.unit),
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Completed measurements (for tests and tooling).
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Recorded service-level metrics (for tests and tooling).
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }
}

/// Directory bench suites write their JSON into: `$LISA_BENCH_DIR`, or
/// the workspace-level `target/bench/`. Cargo runs bench binaries with
/// the package dir as CWD, so the default is anchored through
/// `CARGO_MANIFEST_DIR`. Shared with `bench_check`, which validates the
/// files after a run.
pub fn bench_dir() -> String {
    std::env::var("LISA_BENCH_DIR").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => format!("{m}/../../target/bench"),
        Err(_) => "target/bench".to_string(),
    })
}

/// Warmup then median-of-N measurement of one benchmark body.
fn measure(name: &str, samples: usize, f: &mut dyn FnMut()) -> Measurement {
    // Warmup: run until the budget elapses (at least once) to fault in
    // caches and estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    loop {
        f();
        warm_iters += 1;
        if warm_start.elapsed() >= WARMUP {
            break;
        }
    }
    let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let iters = ((SAMPLE_TIME.as_nanos() as f64 / est_ns).round() as u64).max(1);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    Measurement {
        name: name.to_string(),
        median_ns: per_iter[per_iter.len() / 2],
        samples,
        iters_per_sample: iters,
    }
}

fn print_measurement(suite: &str, m: &Measurement) {
    println!(
        "bench {suite}/{name}: {median:.0} ns/iter (median of {s} × {i} iters)",
        name = m.name,
        median = m.median_ns,
        s = m.samples,
        i = m.iters_per_sample,
    );
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations_and_orders_samples() {
        let mut calls = 0u64;
        let m = measure("noop", 3, &mut || calls += 1);
        assert!(calls >= 3, "warmup plus samples must call the body");
        assert_eq!(m.samples, 3);
        assert!(m.iters_per_sample >= 1);
        assert!(m.median_ns >= 0.0);
    }

    #[test]
    fn smoke_mode_runs_cheap_once_and_skips_heavy() {
        let mut suite = Suite::new("t", Mode::Smoke);
        let mut cheap = 0;
        let mut heavy = 0;
        suite.bench("cheap", || cheap += 1);
        suite.bench_heavy("heavy", || heavy += 1);
        assert_eq!(cheap, 1);
        assert_eq!(heavy, 0);
        // Cheap benches are recorded (single-shot) so the smoke JSON still
        // lists them; heavies stay absent.
        assert_eq!(suite.results().len(), 1);
        assert_eq!(suite.results()[0].name, "cheap");
        assert_eq!(suite.results()[0].samples, 1);
        assert_eq!(suite.results()[0].iters_per_sample, 1);
        let json = suite.to_json();
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(!json.contains("heavy"));
    }

    #[test]
    fn json_output_has_suite_and_rows() {
        let mut suite = Suite::new("unit", Mode::Measure);
        suite.results.push(Measurement {
            name: "a/b".into(),
            median_ns: 12.5,
            samples: 11,
            iters_per_sample: 100,
        });
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"median_ns\": 12.5"));
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn metrics_are_recorded_in_both_modes_and_serialised() {
        for mode in [Mode::Smoke, Mode::Measure] {
            let mut suite = Suite::new("t", mode);
            suite.metric("load/hit_rate_pct", 75.0, "percent");
            suite.metric("load/p50_ms", 1.25, "ms");
            assert_eq!(suite.metrics().len(), 2);
            let json = suite.to_json();
            assert!(json.contains("\"name\": \"load/hit_rate_pct\", \"value\": 75.000"));
            assert!(json.contains("\"unit\": \"ms\""));
        }
    }

    #[test]
    fn empty_metrics_array_is_still_emitted() {
        let suite = Suite::new("t", Mode::Smoke);
        assert!(suite.to_json().contains("\"metrics\": [\n  ]"));
    }
}
