//! Processing element identifiers and grid coordinates.

use std::fmt;

/// Identifier of a processing element, dense in `0..pe_count`.
///
/// The id encodes row-major position: `id = row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(u32);

impl PeId {
    /// Creates a PE id from a raw index.
    pub fn new(index: usize) -> Self {
        PeId(u32::try_from(index).expect("PE index fits in u32"))
    }

    /// Raw index of this PE.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// A (row, column) grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Row, top to bottom.
    pub row: usize,
    /// Column, left to right.
    pub col: usize,
}

impl Coord {
    /// Manhattan distance between two coordinates — the spatial distance
    /// metric the paper uses for 2D mesh accelerators (§III-A).
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.row.abs_diff(other.row) + self.col.abs_diff(other.col)) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Coord { row: 0, col: 0 };
        let b = Coord { row: 2, col: 3 };
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn pe_id_roundtrip() {
        let id = PeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "pe7");
    }
}
