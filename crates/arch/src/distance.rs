//! Hop-distance indexes: the dense all-pairs table and a landmark
//! distance oracle for large fabrics.
//!
//! The paper's evaluation fabrics are tiny (≤ 64 PEs), so an all-pairs
//! BFS table is the obvious index: `n²` half-words, O(1) exact lookups.
//! That table is quadratic in PE count, though — a 32×32 CGRA needs
//! 2 MiB, and it is rebuilt on every interconnect change. For big
//! fabrics this module provides a *distance oracle* that stores
//!
//! * a truncated-BFS ball per source — **exact** distances up to
//!   [`EXACT_RADIUS`] hops, stored as a per-source CSR of sorted
//!   `(target, distance)` pairs and read by binary search, and
//! * ~√n *landmarks* with full forward (`landmark → all`) and reverse
//!   (`all → landmark`) BFS rows, from which queries beyond the ball
//!   radius derive a **lower bound** via the directed triangle
//!   inequality.
//!
//! The asymmetric (forward + reverse) landmark rows matter because link
//! graphs are directed in general (systolic arrays have no leftward
//! links).
//!
//! # The lower-bound contract
//!
//! [`DistanceIndex::query`] never *overestimates* a distance:
//!
//! * inside the ball the answer is the exact BFS distance;
//! * outside the ball the answer is
//!   `max(radius + 1, d(l, to) − d(l, from), d(from, l) − d(to, l))`
//!   over all landmarks `l` with the relevant rows finite — each term
//!   is a valid lower bound by the triangle inequality, and missing the
//!   ball already proves the distance exceeds the radius;
//! * `u32::MAX` is returned only on a *proof* of unreachability: some
//!   landmark is reached from `from` but not from `to`'s side (or vice
//!   versa), which contradicts any `from → to` path.
//!
//! The router's cone pruning (`crates/mapper`) only requires a true
//! lower bound, so swapping the dense table for the oracle leaves every
//! routing result byte-identical — only pruning tightness (search
//! effort), never reachability or route choice, is affected. A truly
//! unreachable pair may still get a finite lower bound when no landmark
//! witnesses the separation; that is sound for pruning (the route
//! search itself discovers the infeasibility).

use std::collections::VecDeque;

use crate::PeId;

/// PE-count threshold for [`DistanceMode::Auto`]: fabrics up to this
/// size keep the dense table (covers the whole paper suite, ≤ 64 PEs,
/// where exactness is free); bigger fabrics switch to the oracle.
pub(crate) const DENSE_DISTANCE_LIMIT: usize = 128;

/// Exact-ball radius of the oracle. Mapper routes span few cycles, so
/// almost every cone-pruning query lands in the exact regime; the
/// landmark lower bound only has to cover long-haul queries.
pub(crate) const EXACT_RADIUS: u8 = 8;

/// How an [`crate::Accelerator`] indexes hop distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceMode {
    /// Dense table up to 128 PEs, landmark oracle beyond (the default).
    #[default]
    Auto,
    /// Force the dense all-pairs table (exact, quadratic memory).
    Dense,
    /// Force the landmark oracle (near-linear memory, lower bounds
    /// beyond the exact radius).
    Oracle,
}

/// The distance index held by an accelerator: either the historical
/// dense table or the landmark oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DistanceIndex {
    Dense { n: usize, table: Vec<u16> },
    Oracle(DistanceOracle),
}

impl DistanceIndex {
    /// Builds the index chosen by `mode` for the given link graph.
    pub(crate) fn build(neighbors: &[Vec<PeId>], mode: DistanceMode) -> Self {
        let n = neighbors.len();
        let dense = match mode {
            DistanceMode::Dense => true,
            DistanceMode::Oracle => false,
            DistanceMode::Auto => n <= DENSE_DISTANCE_LIMIT,
        };
        if dense {
            DistanceIndex::Dense {
                n,
                table: dense_distances(neighbors),
            }
        } else {
            DistanceIndex::Oracle(DistanceOracle::build(neighbors, EXACT_RADIUS))
        }
    }

    /// Minimum hop count from `from` to `to` (dense: exact; oracle:
    /// exact within the ball radius, a true lower bound beyond), or
    /// `u32::MAX` when the index proves unreachability.
    pub(crate) fn query(&self, from: usize, to: usize) -> u32 {
        match self {
            DistanceIndex::Dense { n, table } => match table[from * n + to] {
                u16::MAX => u32::MAX,
                d => u32::from(d),
            },
            DistanceIndex::Oracle(o) => o.query(from, to),
        }
    }

    /// Heap bytes held by the index (the footprint the oracle exists to
    /// shrink).
    pub(crate) fn bytes(&self) -> usize {
        match self {
            DistanceIndex::Dense { table, .. } => table.len() * std::mem::size_of::<u16>(),
            DistanceIndex::Oracle(o) => o.bytes(),
        }
    }

    /// `"dense"` or `"oracle"`, for reports and logs.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            DistanceIndex::Dense { .. } => "dense",
            DistanceIndex::Oracle(_) => "oracle",
        }
    }
}

/// Landmark + truncated-ball distance oracle (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DistanceOracle {
    n: usize,
    radius: u8,
    /// CSR offsets into `ball_idx`/`ball_dist`, length `n + 1`.
    ball_off: Vec<u32>,
    /// Per-source ball members, sorted by PE index for binary search.
    ball_idx: Vec<u16>,
    /// Exact BFS distance of the ball member at the same position.
    ball_dist: Vec<u8>,
    /// Landmark count `L` (≈ √n, strided over the PE ids).
    landmark_count: usize,
    /// `L × n` row-major forward rows: `from_lm[l*n + v] = d(lm_l, v)`.
    from_lm: Vec<u16>,
    /// `L × n` row-major reverse rows: `to_lm[l*n + v] = d(v, lm_l)`.
    to_lm: Vec<u16>,
}

impl DistanceOracle {
    /// Builds the oracle: one truncated BFS per PE plus `2L` full BFS
    /// runs (forward and reversed link graph) for the landmarks.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph or more than `u16::MAX` PEs.
    pub(crate) fn build(neighbors: &[Vec<PeId>], radius: u8) -> Self {
        let n = neighbors.len();
        assert!(n > 0, "distance oracle needs at least one PE");
        assert!(n <= usize::from(u16::MAX), "fabric too large for u16 ids");
        let fwd: Vec<Vec<u16>> = neighbors
            .iter()
            .map(|ns| ns.iter().map(|p| p.index() as u16).collect())
            .collect();
        let mut rev: Vec<Vec<u16>> = vec![Vec::new(); n];
        for (u, ns) in fwd.iter().enumerate() {
            for &v in ns {
                rev[usize::from(v)].push(u as u16);
            }
        }

        // Truncated-BFS balls, CSR with members sorted by PE index.
        let mut ball_off = Vec::with_capacity(n + 1);
        let mut ball_idx = Vec::new();
        let mut ball_dist = Vec::new();
        let mut dist = vec![u16::MAX; n];
        let mut queue = VecDeque::new();
        let mut members: Vec<u16> = Vec::new();
        ball_off.push(0u32);
        for src in 0..n {
            members.clear();
            queue.clear();
            dist[src] = 0;
            members.push(src as u16);
            queue.push_back(src as u16);
            while let Some(u) = queue.pop_front() {
                let d = dist[usize::from(u)];
                if d >= u16::from(radius) {
                    continue;
                }
                for &v in &fwd[usize::from(u)] {
                    if dist[usize::from(v)] == u16::MAX {
                        dist[usize::from(v)] = d + 1;
                        members.push(v);
                        queue.push_back(v);
                    }
                }
            }
            members.sort_unstable();
            for &m in &members {
                ball_idx.push(m);
                ball_dist.push(dist[usize::from(m)] as u8);
                dist[usize::from(m)] = u16::MAX; // reset touched cells only
            }
            ball_off.push(ball_idx.len() as u32);
        }

        // Strided landmarks: L ≈ ceil(√n). Landmark *placement* only
        // affects bound tightness, never soundness.
        let mut l = 1usize;
        while l * l < n {
            l += 1;
        }
        let landmark_count = l.clamp(2, 64).min(n);
        let mut from_lm = Vec::with_capacity(landmark_count * n);
        let mut to_lm = Vec::with_capacity(landmark_count * n);
        for i in 0..landmark_count {
            let lm = i * n / landmark_count;
            from_lm.extend_from_slice(&bfs_row(&fwd, lm));
            to_lm.extend_from_slice(&bfs_row(&rev, lm));
        }

        DistanceOracle {
            n,
            radius,
            ball_off,
            ball_idx,
            ball_dist,
            landmark_count,
            from_lm,
            to_lm,
        }
    }

    /// Exact distance within the ball; lower bound (or an unreachability
    /// proof) beyond — see the module docs for the invariant.
    pub(crate) fn query(&self, from: usize, to: usize) -> u32 {
        if from == to {
            return 0;
        }
        let s = self.ball_off[from] as usize;
        let e = self.ball_off[from + 1] as usize;
        if let Ok(i) = self.ball_idx[s..e].binary_search(&(to as u16)) {
            return u32::from(self.ball_dist[s + i]);
        }
        // Not in the ball: the distance exceeds the radius. Tighten with
        // the directed triangle inequality over the landmarks.
        let mut lb = u32::from(self.radius) + 1;
        for l in 0..self.landmark_count {
            let base = l * self.n;
            let lf = self.from_lm[base + from]; // d(lm, from)
            let lt = self.from_lm[base + to]; // d(lm, to)
            if lf != u16::MAX {
                if lt == u16::MAX {
                    // lm reaches `from` but not `to`: a from→to path
                    // would extend lm→from to lm→to. Unreachable.
                    return u32::MAX;
                }
                if lt > lf {
                    lb = lb.max(u32::from(lt - lf));
                }
            }
            let tf = self.to_lm[base + from]; // d(from, lm)
            let tt = self.to_lm[base + to]; // d(to, lm)
            if tt != u16::MAX {
                if tf == u16::MAX {
                    // `to` reaches lm but `from` does not: a from→to
                    // path would extend to from→lm. Unreachable.
                    return u32::MAX;
                }
                if tf > tt {
                    lb = lb.max(u32::from(tf - tt));
                }
            }
        }
        lb
    }

    /// Heap bytes of the ball CSR and landmark rows.
    pub(crate) fn bytes(&self) -> usize {
        self.ball_off.len() * std::mem::size_of::<u32>()
            + self.ball_idx.len() * std::mem::size_of::<u16>()
            + self.ball_dist.len()
            + (self.from_lm.len() + self.to_lm.len()) * std::mem::size_of::<u16>()
    }
}

/// Full single-source BFS over a u16 adjacency list; `u16::MAX` marks
/// unreachable targets.
fn bfs_row(adj: &[Vec<u16>], src: usize) -> Vec<u16> {
    let n = adj.len();
    let mut dist = vec![u16::MAX; n];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src as u16);
    while let Some(u) = queue.pop_front() {
        let d = dist[usize::from(u)];
        for &v in &adj[usize::from(u)] {
            if dist[usize::from(v)] == u16::MAX {
                dist[usize::from(v)] = d + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs minimum hop distances over the directed link graph: one BFS
/// per source PE, `u16::MAX` when unreachable. Quadratic memory — the
/// index of choice only for small fabrics (and the ground truth the
/// oracle is tested against).
pub(crate) fn dense_distances(neighbors: &[Vec<PeId>]) -> Vec<u16> {
    let n = neighbors.len();
    let mut out = vec![u16::MAX; n * n];
    let mut queue = VecDeque::new();
    for src in 0..n {
        let row = &mut out[src * n..(src + 1) * n];
        row[src] = 0;
        queue.clear();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let d = row[u];
            for &v in &neighbors[u] {
                if row[v.index()] == u16::MAX {
                    row[v.index()] = d + 1;
                    queue.push_back(v.index());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic irregular digraph: a directed ring (so everything
    /// stays reachable) plus LCG-scattered chord edges. Exercises the
    /// non-mesh, non-symmetric case the grid fabrics never produce.
    fn irregular_digraph(n: usize, chords: usize, seed: u64) -> Vec<Vec<PeId>> {
        let mut adj: Vec<Vec<PeId>> = (0..n).map(|i| vec![PeId::new((i + 1) % n)]).collect();
        let mut state = seed | 1;
        let mut next = || {
            // Numerical Recipes LCG; determinism is all that matters.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..chords {
            let a = next() % n;
            let b = next() % n;
            if a != b && !adj[a].contains(&PeId::new(b)) {
                adj[a].push(PeId::new(b));
            }
        }
        adj
    }

    /// The oracle contract on an irregular digraph: exact within the
    /// radius, a true lower bound (never an overestimate) beyond, and
    /// `u32::MAX` only when the pair is genuinely unreachable.
    #[test]
    fn oracle_is_exact_in_ball_and_lower_bound_beyond() {
        let adj = irregular_digraph(150, 90, 7);
        let o = DistanceOracle::build(&adj, EXACT_RADIUS);
        let table = dense_distances(&adj);
        let n = adj.len();
        for from in 0..n {
            for to in 0..n {
                let t = match table[from * n + to] {
                    u16::MAX => u32::MAX,
                    d => u32::from(d),
                };
                let q = o.query(from, to);
                if t <= u32::from(EXACT_RADIUS) {
                    assert_eq!(q, t, "ball must be exact for {from}->{to}");
                } else {
                    assert!(q <= t, "overestimate for {from}->{to}: {q} > {t}");
                    assert!(
                        q > u32::from(EXACT_RADIUS),
                        "beyond the ball the bound must exceed the radius"
                    );
                }
                if q == u32::MAX {
                    assert_eq!(t, u32::MAX, "false unreachability for {from}->{to}");
                }
            }
        }
    }

    /// Two disjoint strongly-connected rings: every cross-component
    /// query must be *proved* unreachable (each component holds a
    /// strided landmark), and same-component queries must stay finite.
    #[test]
    fn oracle_proves_unreachability_across_components() {
        let half = 80;
        let n = 2 * half;
        let adj: Vec<Vec<PeId>> = (0..n)
            .map(|i| {
                let next = if i < half {
                    (i + 1) % half
                } else {
                    half + (i + 1 - half) % half
                };
                vec![PeId::new(next)]
            })
            .collect();
        let o = DistanceOracle::build(&adj, EXACT_RADIUS);
        assert_eq!(o.query(3, half + 3), u32::MAX);
        assert_eq!(o.query(half + 3, 3), u32::MAX);
        // Within one ring: reachable, exact near, bounded far.
        assert_eq!(o.query(0, 5), 5);
        let far = o.query(0, half - 1); // true distance: half - 1 = 79
        assert!(far > u32::from(EXACT_RADIUS) && far <= 79);
    }

    /// Directed asymmetry: the reverse landmark rows must not leak the
    /// cheap forward direction into the expensive reverse one.
    #[test]
    fn oracle_respects_direction() {
        // Pure directed ring: d(a, b) = (b - a) mod n, highly asymmetric.
        let n = 140;
        let adj: Vec<Vec<PeId>> = (0..n).map(|i| vec![PeId::new((i + 1) % n)]).collect();
        let o = DistanceOracle::build(&adj, EXACT_RADIUS);
        assert_eq!(o.query(0, 4), 4);
        let back = o.query(4, 0); // true distance n - 4 = 136
        assert!(back > u32::from(EXACT_RADIUS) && back <= 136);
    }

    /// The whole point: oracle memory is far below the dense table on a
    /// big fabric (here a 32×32 mesh, 1024 PEs).
    #[test]
    fn oracle_is_much_smaller_than_dense_on_big_mesh() {
        let acc = crate::Accelerator::cgra("32x32", 32, 32);
        let neighbors: Vec<Vec<PeId>> = (0..acc.pe_count())
            .map(|i| acc.neighbors(PeId::new(i)).to_vec())
            .collect();
        let o = DistanceOracle::build(&neighbors, EXACT_RADIUS);
        let dense_bytes = acc.pe_count() * acc.pe_count() * std::mem::size_of::<u16>();
        assert!(
            o.bytes() * 2 < dense_bytes,
            "oracle {} B should be well under dense {} B",
            o.bytes(),
            dense_bytes
        );
    }

    #[test]
    fn auto_mode_switches_on_pe_count() {
        let small = irregular_digraph(16, 10, 1);
        let big = irregular_digraph(DENSE_DISTANCE_LIMIT + 1, 10, 1);
        assert_eq!(
            DistanceIndex::build(&small, DistanceMode::Auto).kind(),
            "dense"
        );
        assert_eq!(
            DistanceIndex::build(&big, DistanceMode::Auto).kind(),
            "oracle"
        );
        assert_eq!(
            DistanceIndex::build(&big, DistanceMode::Dense).kind(),
            "dense"
        );
        assert_eq!(
            DistanceIndex::build(&small, DistanceMode::Oracle).kind(),
            "oracle"
        );
    }

    /// Forcing the oracle on a fabric whose diameter fits in the ball
    /// radius must reproduce the dense table bit-for-bit.
    #[test]
    fn forced_oracle_matches_dense_when_ball_covers_fabric() {
        let adj = irregular_digraph(40, 25, 3);
        let dense = DistanceIndex::build(&adj, DistanceMode::Dense);
        let oracle = DistanceIndex::build(&adj, DistanceMode::Oracle);
        let n = adj.len();
        for from in 0..n {
            for to in 0..n {
                let t = dense.query(from, to);
                if t != u32::MAX && t <= u32::from(EXACT_RADIUS) {
                    assert_eq!(oracle.query(from, to), t);
                }
            }
        }
    }
}
