//! Modulo routing resource graph (MRRG).
//!
//! For a target initiation interval II, the accelerator's resources are
//! replicated across II modulo time slots. Each PE contributes per slot:
//!
//! * one **FU slot** — executes an operation *or* routes one value
//!   ("Each PE can do either compute or routing per cycle", paper §II-B),
//! * `regs_per_pe` **register slots** — hold a value in place for a cycle.
//!
//! A value produced by `Fu(p)` at absolute cycle `t` can, at cycle `t+1`,
//! be (a) consumed by a neighbouring FU, (b) routed onward through a
//! neighbouring FU, or (c) written to one of `p`'s registers. Registers
//! hold values and can drive the local FU or the outgoing links. Occupancy
//! is always accounted at `t mod II`: the same physical slot repeats every
//! II cycles.
//!
//! The MRRG is purely structural; the occupancy tables live in the mapper.

use lisa_dfg::OpKind;

use crate::{Accelerator, ArchError, PeId};

/// One physical resource of the accelerator (before time replication).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The functional unit of a PE (compute or route-through).
    Fu(PeId),
    /// Register `reg` of a PE.
    Reg(PeId, u8),
}

impl Resource {
    /// The PE owning this resource.
    pub fn pe(self) -> PeId {
        match self {
            Resource::Fu(p) | Resource::Reg(p, _) => p,
        }
    }

    /// Whether this is a functional-unit resource.
    pub fn is_fu(self) -> bool {
        matches!(self, Resource::Fu(_))
    }
}

/// The modulo routing resource graph for one `(accelerator, II)` pair.
///
/// # Example
///
/// ```
/// use lisa_arch::{Accelerator, Mrrg, Resource, PeId};
///
/// # fn main() -> Result<(), lisa_arch::ArchError> {
/// let acc = Accelerator::cgra("4x4", 4, 4);
/// let mrrg = Mrrg::new(&acc, 2)?;
/// // 16 PEs x (1 FU + 4 regs) x 2 slots.
/// assert_eq!(mrrg.resource_count(), 16 * 5 * 2);
/// // A value at a corner FU can move to 2 neighbours, itself, or 4 regs.
/// assert_eq!(mrrg.moves_from(Resource::Fu(PeId::new(0))).len(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mrrg<'a> {
    acc: &'a Accelerator,
    ii: u32,
    /// `⌊2³²/ii⌋ + 1`: turns the `t mod ii` in every occupancy-index
    /// computation into a multiply-shift (exact for `t < 2¹⁶`, see
    /// [`slot`](Self::slot)) — `index_at` runs once per router expansion
    /// and per placement probe, where a hardware divide dominates.
    slot_magic: u64,
}

impl<'a> Mrrg<'a> {
    /// Builds the MRRG for a target II.
    ///
    /// # Errors
    ///
    /// Fails if `ii` is zero or exceeds the accelerator's configuration
    /// depth ([`Accelerator::max_ii`]).
    pub fn new(acc: &'a Accelerator, ii: u32) -> Result<Self, ArchError> {
        if ii == 0 {
            return Err(ArchError::ZeroIi);
        }
        if ii > acc.max_ii() {
            return Err(ArchError::IiTooLarge {
                ii,
                max_ii: acc.max_ii(),
            });
        }
        Ok(Mrrg {
            acc,
            ii,
            slot_magic: (1u64 << 32) / u64::from(ii) + 1,
        })
    }

    /// The accelerator this MRRG was built for.
    pub fn accelerator(&self) -> &Accelerator {
        self.acc
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The modulo slot of an absolute cycle.
    pub fn slot(&self, t: u32) -> u32 {
        if t < (1 << 16) {
            // Granlund–Montgomery round-up division: with
            // magic = ⌊2³²/ii⌋ + 1 = (2³² + e)/ii for some e ≤ ii, the
            // quotient ⌊t·magic/2³²⌋ equals ⌊t/ii⌋ whenever t·e < 2³²,
            // which holds for all t < 2¹⁶ (ii ≤ 2¹⁶). Schedule times are
            // tiny, so this replaces a hardware divide on the hot path.
            let q = (u64::from(t) * self.slot_magic) >> 32;
            let s = t - (q as u32) * self.ii;
            debug_assert_eq!(s, t % self.ii);
            s
        } else {
            t % self.ii
        }
    }

    /// Resources per modulo slot: one FU plus the register file per PE.
    pub fn resources_per_slot(&self) -> usize {
        self.acc.pe_count() * (1 + self.acc.regs_per_pe())
    }

    /// Total number of (resource, slot) pairs.
    pub fn resource_count(&self) -> usize {
        self.resources_per_slot() * self.ii as usize
    }

    /// Dense index of a (resource, absolute time) pair, folding time into
    /// its modulo slot. Used as the key of occupancy tables.
    pub fn index_at(&self, r: Resource, t: u32) -> usize {
        let slot = self.slot(t) as usize;
        let base = slot * self.resources_per_slot();
        let offset = match r {
            Resource::Fu(p) => p.index(),
            Resource::Reg(p, reg) => {
                debug_assert!((reg as usize) < self.acc.regs_per_pe());
                self.acc.pe_count() + p.index() * self.acc.regs_per_pe() + reg as usize
            }
        };
        base + offset
    }

    /// Dense index of an FU at an absolute time.
    pub fn fu_index_at(&self, pe: PeId, t: u32) -> usize {
        self.index_at(Resource::Fu(pe), t)
    }

    /// Resources a value held at `r` in cycle `t` can occupy at `t + 1`.
    ///
    /// * From an FU: the FU of every outgoing neighbour, the same FU
    ///   (re-route locally), or any local register.
    /// * From a register: the same register (hold), the local FU, or a
    ///   neighbour's FU (registers drive the output links).
    pub fn moves_from(&self, r: Resource) -> Vec<Resource> {
        let mut out = Vec::new();
        self.moves_from_into(r, &mut out);
        out
    }

    /// Allocation-free variant of [`moves_from`](Self::moves_from):
    /// clears `out` and fills it with the successor resources in the same
    /// order. The router calls this once per Dijkstra expansion, so hot
    /// paths reuse one buffer instead of allocating per expansion.
    pub fn moves_from_into(&self, r: Resource, out: &mut Vec<Resource>) {
        out.clear();
        match r {
            Resource::Fu(p) => {
                for &q in self.acc.neighbors(p) {
                    out.push(Resource::Fu(q));
                }
                out.push(Resource::Fu(p));
                for reg in 0..self.acc.regs_per_pe() {
                    out.push(Resource::Reg(p, reg as u8));
                }
            }
            Resource::Reg(p, reg) => {
                out.push(Resource::Reg(p, reg));
                out.push(Resource::Fu(p));
                for &q in self.acc.neighbors(p) {
                    out.push(Resource::Fu(q));
                }
            }
        }
    }

    /// Whether a value held at `r` in cycle `t` can be consumed as an
    /// operand by the FU of `dest` in cycle `t + 1`.
    pub fn can_consume(&self, r: Resource, dest: PeId) -> bool {
        let p = r.pe();
        p == dest || self.acc.linked(p, dest)
    }

    /// Whether an operation may be placed on the FU of `pe` (capability
    /// check; slot availability is the mapper's concern).
    pub fn placeable(&self, pe: PeId, op: OpKind) -> bool {
        self.acc.supports(pe, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_ii() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        assert_eq!(Mrrg::new(&acc, 0).unwrap_err(), ArchError::ZeroIi);
        assert!(matches!(
            Mrrg::new(&acc, 25).unwrap_err(),
            ArchError::IiTooLarge { .. }
        ));
        assert!(Mrrg::new(&acc, 24).is_ok());
    }

    #[test]
    fn index_is_dense_and_unique() {
        let acc = Accelerator::cgra("3x3", 3, 3).with_regs_per_pe(2);
        let mrrg = Mrrg::new(&acc, 3).unwrap();
        let mut seen = vec![false; mrrg.resource_count()];
        for t in 0..3 {
            for p in 0..9 {
                let pe = PeId::new(p);
                for r in
                    std::iter::once(Resource::Fu(pe)).chain((0..2).map(|i| Resource::Reg(pe, i)))
                {
                    let idx = mrrg.index_at(r, t);
                    assert!(idx < mrrg.resource_count());
                    assert!(!seen[idx], "index {idx} reused");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn time_folds_modulo_ii() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mrrg = Mrrg::new(&acc, 3).unwrap();
        let r = Resource::Fu(PeId::new(5));
        assert_eq!(mrrg.index_at(r, 1), mrrg.index_at(r, 4));
        assert_ne!(mrrg.index_at(r, 1), mrrg.index_at(r, 2));
    }

    #[test]
    fn moves_from_fu() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mrrg = Mrrg::new(&acc, 1).unwrap();
        // Interior PE: 4 neighbours + self + 4 regs.
        let m = mrrg.moves_from(Resource::Fu(PeId::new(5)));
        assert_eq!(m.len(), 9);
        assert!(m.contains(&Resource::Fu(PeId::new(5))));
        assert!(m.contains(&Resource::Reg(PeId::new(5), 3)));
    }

    #[test]
    fn moves_from_reg() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mrrg = Mrrg::new(&acc, 1).unwrap();
        let m = mrrg.moves_from(Resource::Reg(PeId::new(0), 0));
        // hold + local FU + 2 corner neighbours.
        assert_eq!(m.len(), 4);
        assert!(m.contains(&Resource::Reg(PeId::new(0), 0)));
        assert!(m.contains(&Resource::Fu(PeId::new(0))));
    }

    #[test]
    fn consume_adjacency() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mrrg = Mrrg::new(&acc, 2).unwrap();
        // Same PE.
        assert!(mrrg.can_consume(Resource::Reg(PeId::new(5), 0), PeId::new(5)));
        // Linked neighbour.
        assert!(mrrg.can_consume(Resource::Fu(PeId::new(5)), PeId::new(6)));
        // Distant PE.
        assert!(!mrrg.can_consume(Resource::Fu(PeId::new(0)), PeId::new(15)));
    }

    #[test]
    fn systolic_moves_are_directional() {
        let acc = Accelerator::systolic("sys", 3, 3);
        let mrrg = Mrrg::new(&acc, 1).unwrap();
        let mid = PeId::new(4); // (1,1)
        let m = mrrg.moves_from(Resource::Fu(mid));
        // right, up, down, self, 1 reg = 5; no left.
        assert_eq!(m.len(), 5);
        assert!(!m.contains(&Resource::Fu(PeId::new(3)))); // left of (1,1)
    }
}
