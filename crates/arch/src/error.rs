//! Error type for accelerator construction.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing an accelerator model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// Grid dimensions must both be at least 1.
    EmptyGrid,
    /// Systolic arrays need at least three columns (load column, compute
    /// interior, store column).
    SystolicTooNarrow {
        /// Number of columns requested.
        cols: usize,
    },
    /// The requested II exceeds the accelerator's configuration depth.
    IiTooLarge {
        /// Requested initiation interval.
        ii: u32,
        /// Maximum supported by the configuration memory.
        max_ii: u32,
    },
    /// The requested II must be at least 1.
    ZeroIi,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::EmptyGrid => write!(f, "grid dimensions must be at least 1x1"),
            ArchError::SystolicTooNarrow { cols } => {
                write!(f, "systolic array needs at least 3 columns, got {cols}")
            }
            ArchError::IiTooLarge { ii, max_ii } => {
                write!(f, "II {ii} exceeds configuration depth {max_ii}")
            }
            ArchError::ZeroIi => write!(f, "II must be at least 1"),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ArchError::EmptyGrid,
            ArchError::SystolicTooNarrow { cols: 2 },
            ArchError::IiTooLarge { ii: 30, max_ii: 24 },
            ArchError::ZeroIi,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
