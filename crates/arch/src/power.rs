//! Analytical power model for the Fig. 10 power-efficiency comparison.
//!
//! The paper synthesises its CGRA in Verilog on a 22 nm process to obtain
//! power numbers; offline we substitute an activity-based analytical model
//! (see DESIGN.md "Substitutions"). Fig. 10 reports MOPS/W *normalised to
//! LISA*, so only relative power matters: a mapping that achieves a lower
//! II executes more operations per second against a mostly-static power
//! floor, and a mapping that burns more routing slots pays more dynamic
//! power. Both effects are captured here.
//!
//! Default coefficients are loosely calibrated to low-power CGRAs in the
//! 100 MHz class (HyCUBE reports ~26 MOPS/mW at 0.9 V; at nominal voltage
//! and a 22 nm process an order of magnitude less is typical).

use crate::Accelerator;

/// Activity counters extracted from a mapping, per loop iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// FU slots used for computation (one per mapped operation).
    pub compute_slots: usize,
    /// FU slots used for routing values through PEs.
    pub route_slots: usize,
    /// Register slots used for holding values.
    pub reg_slots: usize,
}

impl Activity {
    /// Total occupied slots.
    pub fn total(&self) -> usize {
        self.compute_slots + self.route_slots + self.reg_slots
    }
}

/// Power/energy coefficients of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Clock frequency in Hz (§VI: 100 MHz like other low-power CGRAs).
    pub frequency_hz: f64,
    /// Static (leakage + clock tree) power per PE, in watts.
    pub static_w_per_pe: f64,
    /// Energy per executed operation, in joules.
    pub compute_energy_j: f64,
    /// Energy per route-through, in joules.
    pub route_energy_j: f64,
    /// Energy per register hold, in joules.
    pub reg_energy_j: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            frequency_hz: 100.0e6,
            static_w_per_pe: 50.0e-6,
            compute_energy_j: 8.0e-12,
            route_energy_j: 3.0e-12,
            reg_energy_j: 1.5e-12,
        }
    }
}

impl PowerModel {
    /// Total power in watts for a mapping with the given activity at the
    /// given II. Every occupied modulo slot fires once per II cycles, so
    /// its average switching rate is `frequency / II`.
    pub fn power_w(&self, acc: &Accelerator, activity: Activity, ii: u32) -> f64 {
        assert!(ii >= 1, "II must be positive");
        let static_w = self.static_w_per_pe * acc.pe_count() as f64;
        let fires_per_sec = self.frequency_hz / f64::from(ii);
        let dynamic_w = fires_per_sec
            * (activity.compute_slots as f64 * self.compute_energy_j
                + activity.route_slots as f64 * self.route_energy_j
                + activity.reg_slots as f64 * self.reg_energy_j);
        static_w + dynamic_w
    }

    /// Millions of operations per second achieved by a mapping: each of the
    /// `ops` operations completes once per II cycles.
    pub fn mops(&self, ops: usize, ii: u32) -> f64 {
        assert!(ii >= 1, "II must be positive");
        ops as f64 * self.frequency_hz / f64::from(ii) / 1.0e6
    }

    /// Performance per watt (MOPS/W), the Fig. 10 metric.
    pub fn mops_per_watt(&self, acc: &Accelerator, ops: usize, activity: Activity, ii: u32) -> f64 {
        self.mops(ops, ii) / self.power_w(acc, activity, ii)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(compute: usize, route: usize, reg: usize) -> Activity {
        Activity {
            compute_slots: compute,
            route_slots: route,
            reg_slots: reg,
        }
    }

    #[test]
    fn lower_ii_is_more_efficient() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let pm = PowerModel::default();
        let a = act(20, 10, 5);
        let eff2 = pm.mops_per_watt(&acc, 20, a, 2);
        let eff4 = pm.mops_per_watt(&acc, 20, a, 4);
        assert!(
            eff2 > eff4,
            "halving II should raise efficiency: {eff2} vs {eff4}"
        );
    }

    #[test]
    fn more_routing_costs_power() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let pm = PowerModel::default();
        let lean = pm.power_w(&acc, act(20, 5, 2), 3);
        let fat = pm.power_w(&acc, act(20, 40, 20), 3);
        assert!(fat > lean);
    }

    #[test]
    fn mops_scales_with_ops_and_ii() {
        let pm = PowerModel::default();
        assert!((pm.mops(10, 1) - 1000.0).abs() < 1e-9);
        assert!((pm.mops(10, 2) - 500.0).abs() < 1e-9);
        assert!((pm.mops(20, 1) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_array_burns_more_static_power() {
        let pm = PowerModel::default();
        let small = Accelerator::cgra("3x3", 3, 3);
        let big = Accelerator::cgra("8x8", 8, 8);
        let a = act(9, 0, 0);
        assert!(pm.power_w(&big, a, 1) > pm.power_w(&small, a, 1));
    }

    #[test]
    fn efficiency_in_plausible_range() {
        // A fully-busy 4x4 at II=1 should land in the hundreds-to-thousands
        // of MOPS/W — the right ballpark for low-power CGRAs.
        let acc = Accelerator::cgra("4x4", 4, 4);
        let pm = PowerModel::default();
        let eff = pm.mops_per_watt(&acc, 16, act(16, 8, 4), 1);
        assert!(eff > 100.0 && eff < 10_000_000.0, "{eff}");
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        let pm = PowerModel::default();
        let _ = pm.mops(10, 0);
    }
}
