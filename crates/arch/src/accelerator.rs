//! The accelerator model: CGRAs and systolic arrays on a 2D grid.

use std::fmt;

use lisa_dfg::OpKind;

use crate::distance::{DistanceIndex, DENSE_DISTANCE_LIMIT};
use crate::{Coord, DistanceMode, PeId};

/// Which PEs may access the on-chip memory (CGRA variants of §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryConnectivity {
    /// Every PE can issue loads and stores (baseline CGRAs).
    All,
    /// Only the left-most column can issue loads and stores
    /// ("4×4 CGRA with less memory connectivity").
    LeftColumn,
}

/// Functional heterogeneity of a CGRA's PEs.
///
/// Accelerator generators (REVAMP-style, paper §I) trim expensive units
/// from some PEs; a portable compiler must respect the resulting
/// capability map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Heterogeneity {
    /// Every PE has the full ALU (baseline CGRAs).
    #[default]
    Homogeneous,
    /// Multipliers and dividers only on PEs whose row+column parity is
    /// even (a checkerboard), halving the expensive units.
    CheckerboardMul,
}

/// Link topology of a CGRA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interconnect {
    /// Classic mesh: one hop per cycle to the four neighbours (Fig. 1).
    #[default]
    Mesh,
    /// HyCUBE-style single-cycle multi-hop: a value reaches any PE within
    /// the given Manhattan radius in one cycle (the bypass network of the
    /// authors' HyCUBE architecture, §I).
    MultiHop {
        /// Manhattan radius reachable per cycle (≥ 1; 1 equals `Mesh`).
        radius: u8,
    },
}

/// The accelerator family, fixing per-PE capabilities and link topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// Coarse-grained reconfigurable array: per-cycle reconfigurable PEs on
    /// a 2D mesh with bidirectional neighbour links (paper Fig. 1).
    Cgra {
        /// Memory connectivity of the PEs.
        memory: MemoryConnectivity,
        /// Functional heterogeneity of the PEs.
        heterogeneity: Heterogeneity,
    },
    /// Systolic array with Revel-like basic units (paper Fig. 3): fixed
    /// per-PE function, left-most column loads, right-most column stores,
    /// and forward-only links (right, up, down).
    Systolic,
}

/// A modelled spatial accelerator.
///
/// Construct with [`Accelerator::cgra`] or [`Accelerator::systolic`], then
/// refine with the builder-style `with_*` methods.
///
/// # Example
///
/// ```
/// use lisa_arch::{Accelerator, MemoryConnectivity, PeId};
/// use lisa_dfg::OpKind;
///
/// // The paper's "4×4 CGRA with less routing resources": one register/PE.
/// let lr = Accelerator::cgra("4x4-lr", 4, 4).with_regs_per_pe(1);
/// assert_eq!(lr.regs_per_pe(), 1);
///
/// // "Less memory connectivity": loads only on the left column.
/// let lm = Accelerator::cgra("4x4-lm", 4, 4)
///     .with_memory(MemoryConnectivity::LeftColumn);
/// assert!(lm.supports(PeId::new(0), OpKind::Load));  // col 0
/// assert!(!lm.supports(PeId::new(1), OpKind::Load)); // col 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accelerator {
    name: String,
    rows: usize,
    cols: usize,
    regs_per_pe: usize,
    max_ii: u32,
    kind: AcceleratorKind,
    neighbors: Vec<Vec<PeId>>,
    /// Distance-index policy chosen by [`Self::with_distance_mode`]
    /// (default [`DistanceMode::Auto`]); remembered so interconnect
    /// changes rebuild the same kind of index.
    dist_mode: DistanceMode,
    /// Minimum link-hop distances over the directed link graph: a dense
    /// all-pairs table on small fabrics, a landmark oracle (exact within
    /// a radius, true lower bound beyond) on large ones. Derived from
    /// `neighbors`; rebuilt whenever the interconnect changes.
    dist: DistanceIndex,
}

impl Accelerator {
    /// Default number of registers per PE on baseline CGRAs (§VI: "The
    /// baseline CGRAs have four registers per PE").
    pub const DEFAULT_REGS_PER_PE: usize = 4;
    /// Configuration memory depth on CGRAs (§VI: "Each PE has 24
    /// configuration entries […] which means the maximum possible II is 24").
    pub const DEFAULT_MAX_II: u32 = 24;
    /// PE count up to which [`DistanceMode::Auto`] keeps the exact dense
    /// hop-distance table; larger fabrics get the landmark oracle.
    pub const DENSE_DISTANCE_LIMIT: usize = DENSE_DISTANCE_LIMIT;

    /// Creates a baseline CGRA of the given grid size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn cgra(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let kind = AcceleratorKind::Cgra {
            memory: MemoryConnectivity::All,
            heterogeneity: Heterogeneity::Homogeneous,
        };
        let neighbors = mesh_neighbors(rows, cols);
        let dist = DistanceIndex::build(&neighbors, DistanceMode::Auto);
        Accelerator {
            name: name.into(),
            rows,
            cols,
            regs_per_pe: Self::DEFAULT_REGS_PER_PE,
            max_ii: Self::DEFAULT_MAX_II,
            kind,
            neighbors,
            dist_mode: DistanceMode::Auto,
            dist,
        }
    }

    /// Creates a systolic array of the given grid size. PEs keep one
    /// accumulation register; the array is spatial-only (II fixed at 1).
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than 3 columns or zero rows.
    pub fn systolic(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        assert!(rows > 0, "grid dimensions must be positive");
        assert!(
            cols >= 3,
            "systolic array needs load, compute, store columns"
        );
        let neighbors = systolic_neighbors(rows, cols);
        let dist = DistanceIndex::build(&neighbors, DistanceMode::Auto);
        Accelerator {
            name: name.into(),
            rows,
            cols,
            regs_per_pe: 1,
            max_ii: 1,
            kind: AcceleratorKind::Systolic,
            neighbors,
            dist_mode: DistanceMode::Auto,
            dist,
        }
    }

    /// Overrides the number of registers per PE (builder style).
    pub fn with_regs_per_pe(mut self, regs: usize) -> Self {
        self.regs_per_pe = regs;
        self
    }

    /// Overrides the memory connectivity (builder style; CGRA only).
    ///
    /// # Panics
    ///
    /// Panics when called on a systolic array, whose memory topology is
    /// fixed by construction.
    pub fn with_memory(mut self, memory: MemoryConnectivity) -> Self {
        match &mut self.kind {
            AcceleratorKind::Cgra { memory: m, .. } => *m = memory,
            AcceleratorKind::Systolic => {
                panic!("memory connectivity is fixed on systolic arrays")
            }
        }
        self
    }

    /// Overrides the PE heterogeneity (builder style; CGRA only).
    ///
    /// # Panics
    ///
    /// Panics when called on a systolic array, whose per-PE functions are
    /// fixed by construction.
    pub fn with_heterogeneity(mut self, heterogeneity: Heterogeneity) -> Self {
        match &mut self.kind {
            AcceleratorKind::Cgra {
                heterogeneity: h, ..
            } => *h = heterogeneity,
            AcceleratorKind::Systolic => {
                panic!("PE functions are fixed on systolic arrays")
            }
        }
        self
    }

    /// Stable keys of the named accelerator catalog ([`Self::standard`]),
    /// in the order the experiment tables use.
    pub const STANDARD_KEYS: [&'static str; 6] =
        ["3x3", "4x4", "4x4-lr", "4x4-lm", "8x8", "systolic"];

    /// The named accelerator catalog shared by the CLI tools and the
    /// serving daemon: one stable key per modelled fabric of the paper's
    /// evaluation (§VI). Returns `None` for an unknown key.
    pub fn standard(key: &str) -> Option<Self> {
        Some(match key {
            "3x3" => Accelerator::cgra("3x3", 3, 3),
            "4x4" => Accelerator::cgra("4x4", 4, 4),
            "4x4-lr" => Accelerator::cgra("4x4-lr", 4, 4).with_regs_per_pe(1),
            "4x4-lm" => {
                Accelerator::cgra("4x4-lm", 4, 4).with_memory(MemoryConnectivity::LeftColumn)
            }
            "8x8" => Accelerator::cgra("8x8", 8, 8),
            "systolic" => Accelerator::systolic("systolic-5x5", 5, 5),
            _ => return None,
        })
    }

    /// Overrides the configuration depth, i.e. the maximum II.
    pub fn with_max_ii(mut self, max_ii: u32) -> Self {
        assert!(max_ii >= 1);
        self.max_ii = max_ii;
        self
    }

    /// Overrides the interconnect (builder style; CGRA only).
    ///
    /// # Panics
    ///
    /// Panics on a systolic array (its forward-only links are fixed) or a
    /// zero radius.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        match self.kind {
            AcceleratorKind::Cgra { .. } => {}
            AcceleratorKind::Systolic => panic!("links are fixed on systolic arrays"),
        }
        if let Interconnect::MultiHop { radius } = interconnect {
            assert!(radius >= 1, "multi-hop radius must be at least 1");
        }
        self.neighbors = match interconnect {
            Interconnect::Mesh | Interconnect::MultiHop { radius: 1 } => {
                mesh_neighbors(self.rows, self.cols)
            }
            Interconnect::MultiHop { radius } => multihop_neighbors(self.rows, self.cols, radius),
        };
        self.dist = DistanceIndex::build(&self.neighbors, self.dist_mode);
        self
    }

    /// Overrides how hop distances are indexed (builder style). The
    /// default, [`DistanceMode::Auto`], keeps the exact dense table up
    /// to 128 PEs and switches to the landmark oracle beyond — see
    /// [`Self::hop_distance`] for the semantics of each. The choice
    /// persists across later interconnect changes.
    pub fn with_distance_mode(mut self, mode: DistanceMode) -> Self {
        self.dist_mode = mode;
        self.dist = DistanceIndex::build(&self.neighbors, mode);
        self
    }

    /// Accelerator display name (e.g. `"4x4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Registers available per PE for routing/holding values.
    pub fn regs_per_pe(&self) -> usize {
        self.regs_per_pe
    }

    /// Maximum initiation interval the configuration memory supports.
    pub fn max_ii(&self) -> u32 {
        self.max_ii
    }

    /// The accelerator family.
    pub fn kind(&self) -> AcceleratorKind {
        self.kind
    }

    /// Whether the accelerator is spatial-only (no temporal multiplexing);
    /// true for the systolic array.
    pub fn is_spatial_only(&self) -> bool {
        self.max_ii == 1
    }

    /// Grid coordinate of a PE.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn coord(&self, pe: PeId) -> Coord {
        assert!(pe.index() < self.pe_count(), "PE out of range");
        Coord {
            row: pe.index() / self.cols,
            col: pe.index() % self.cols,
        }
    }

    /// PE at a grid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn pe_at(&self, coord: Coord) -> PeId {
        assert!(coord.row < self.rows && coord.col < self.cols);
        PeId::new(coord.row * self.cols + coord.col)
    }

    /// Outgoing neighbour PEs (where this PE can send a value in one cycle).
    pub fn neighbors(&self, pe: PeId) -> &[PeId] {
        &self.neighbors[pe.index()]
    }

    /// Whether `src` can send a value to `dst` over one link hop.
    pub fn linked(&self, src: PeId, dst: PeId) -> bool {
        self.neighbors[src.index()].contains(&dst)
    }

    /// Spatial distance between two PEs: Manhattan distance on the grid
    /// (the metric the paper adopts for 2D mesh accelerators, §III-A).
    pub fn spatial_distance(&self, a: PeId, b: PeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// Minimum number of link hops from `from` to `to` over the directed
    /// link graph, or `u32::MAX` when the index proves unreachability
    /// (e.g. leftward on a systolic array). Precomputed at construction.
    ///
    /// With the dense index (fabrics up to 128 PEs under
    /// [`DistanceMode::Auto`]) the value is always exact. With the
    /// landmark oracle (large fabrics) it is exact within the oracle's
    /// ball radius and a **true lower bound** beyond — never an
    /// overestimate. The router relies on exactly this lower-bound
    /// contract to prune its search cone, so routing results are
    /// identical under either index.
    pub fn hop_distance(&self, from: PeId, to: PeId) -> u32 {
        self.dist.query(from.index(), to.index())
    }

    /// Heap bytes held by the hop-distance index (`"dense"` is quadratic
    /// in PE count; `"oracle"` is near-linear).
    pub fn distance_index_bytes(&self) -> usize {
        self.dist.bytes()
    }

    /// Which hop-distance index is active: `"dense"` or `"oracle"`.
    pub fn distance_index_kind(&self) -> &'static str {
        self.dist.kind()
    }

    /// Whether the PE can execute the operation.
    ///
    /// * CGRA: every PE executes every ALU op; memory ops additionally
    ///   require a memory-capable PE.
    /// * Systolic: left column loads, right column stores, interior PEs
    ///   add/sub/mul and constant generation only.
    pub fn supports(&self, pe: PeId, op: OpKind) -> bool {
        let c = self.coord(pe);
        match self.kind {
            AcceleratorKind::Cgra {
                memory,
                heterogeneity,
            } => {
                if op.is_memory() {
                    return match memory {
                        MemoryConnectivity::All => true,
                        MemoryConnectivity::LeftColumn => c.col == 0,
                    };
                }
                match heterogeneity {
                    Heterogeneity::Homogeneous => true,
                    Heterogeneity::CheckerboardMul => {
                        if matches!(op, OpKind::Mul | OpKind::Div) {
                            (c.row + c.col) % 2 == 0
                        } else {
                            true
                        }
                    }
                }
            }
            AcceleratorKind::Systolic => match op {
                OpKind::Load => c.col == 0,
                OpKind::Store => c.col == self.cols - 1,
                OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Const => {
                    c.col != 0 && c.col != self.cols - 1
                }
                _ => false,
            },
        }
    }

    /// PEs allowed to execute the operation, in id order.
    pub fn supporting_pes(&self, op: OpKind) -> Vec<PeId> {
        (0..self.pe_count())
            .map(PeId::new)
            .filter(|&pe| self.supports(pe, op))
            .collect()
    }

    /// The six evaluation architectures of the paper, in Table II order.
    pub fn paper_suite() -> Vec<Accelerator> {
        vec![
            Accelerator::cgra("4x4", 4, 4),
            Accelerator::cgra("3x3", 3, 3),
            Accelerator::cgra("4x4-lr", 4, 4).with_regs_per_pe(1),
            Accelerator::cgra("4x4-lm", 4, 4).with_memory(MemoryConnectivity::LeftColumn),
            Accelerator::cgra("8x8", 8, 8),
            Accelerator::systolic("systolic-5x5", 5, 5),
        ]
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} {:?}, {} regs/PE, max II {})",
            self.name, self.rows, self.cols, self.kind, self.regs_per_pe, self.max_ii
        )
    }
}

fn mesh_neighbors(rows: usize, cols: usize) -> Vec<Vec<PeId>> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let mut n = Vec::new();
            if r > 0 {
                n.push(PeId::new((r - 1) * cols + c));
            }
            if r + 1 < rows {
                n.push(PeId::new((r + 1) * cols + c));
            }
            if c > 0 {
                n.push(PeId::new(r * cols + c - 1));
            }
            if c + 1 < cols {
                n.push(PeId::new(r * cols + c + 1));
            }
            out.push(n);
        }
    }
    out
}

/// All PEs within the given Manhattan radius (excluding self), reachable
/// in one cycle on a HyCUBE-style bypass network.
fn multihop_neighbors(rows: usize, cols: usize, radius: u8) -> Vec<Vec<PeId>> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let here = Coord { row: r, col: c };
            let mut n = Vec::new();
            for r2 in 0..rows {
                for c2 in 0..cols {
                    let there = Coord { row: r2, col: c2 };
                    let d = here.manhattan(there);
                    if d >= 1 && d <= u32::from(radius) {
                        n.push(PeId::new(r2 * cols + c2));
                    }
                }
            }
            out.push(n);
        }
    }
    out
}

/// Systolic links are forward-only: right, up, down (no left), modelling
/// the left-to-right wavefront of Fig. 3.
fn systolic_neighbors(rows: usize, cols: usize) -> Vec<Vec<PeId>> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let mut n = Vec::new();
            if c + 1 < cols {
                n.push(PeId::new(r * cols + c + 1));
            }
            if r > 0 {
                n.push(PeId::new((r - 1) * cols + c));
            }
            if r + 1 < rows {
                n.push(PeId::new((r + 1) * cols + c));
            }
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_covers_every_key() {
        for key in Accelerator::STANDARD_KEYS {
            let acc = Accelerator::standard(key).expect("catalog key builds");
            assert!(acc.pe_count() > 0, "{key} is degenerate");
        }
        assert!(Accelerator::standard("16x16").is_none());
        // The systolic entry keeps its descriptive fabric name.
        assert_eq!(
            Accelerator::standard("systolic").unwrap().name(),
            "systolic-5x5"
        );
    }

    #[test]
    fn mesh_neighbor_counts() {
        let a = Accelerator::cgra("4x4", 4, 4);
        // Corners: 2, edges: 3, interior: 4.
        assert_eq!(a.neighbors(PeId::new(0)).len(), 2);
        assert_eq!(a.neighbors(PeId::new(1)).len(), 3);
        assert_eq!(a.neighbors(PeId::new(5)).len(), 4);
        // Mesh links are symmetric.
        for pe in 0..a.pe_count() {
            let pe = PeId::new(pe);
            for &n in a.neighbors(pe) {
                assert!(a.linked(n, pe), "asymmetric link {pe} {n}");
            }
        }
    }

    #[test]
    fn coord_roundtrip() {
        let a = Accelerator::cgra("3x3", 3, 3);
        for i in 0..9 {
            let pe = PeId::new(i);
            assert_eq!(a.pe_at(a.coord(pe)), pe);
        }
    }

    #[test]
    fn spatial_distance_is_manhattan() {
        let a = Accelerator::cgra("4x4", 4, 4);
        assert_eq!(a.spatial_distance(PeId::new(0), PeId::new(15)), 6);
        assert_eq!(a.spatial_distance(PeId::new(5), PeId::new(6)), 1);
    }

    #[test]
    fn mesh_hop_distance_is_manhattan() {
        let a = Accelerator::cgra("4x4", 4, 4);
        for i in 0..16 {
            for j in 0..16 {
                let (i, j) = (PeId::new(i), PeId::new(j));
                assert_eq!(a.hop_distance(i, j), a.spatial_distance(i, j));
            }
        }
    }

    #[test]
    fn systolic_hop_distance_blocks_leftward() {
        let s = Accelerator::systolic("sys", 3, 3);
        let left = s.pe_at(Coord { row: 1, col: 0 });
        let right = s.pe_at(Coord { row: 1, col: 2 });
        assert_eq!(s.hop_distance(left, right), 2);
        assert_eq!(s.hop_distance(right, left), u32::MAX);
    }

    #[test]
    fn multihop_shrinks_hop_distance() {
        let a =
            Accelerator::cgra("hy", 4, 4).with_interconnect(Interconnect::MultiHop { radius: 2 });
        // Opposite corners: Manhattan 6, but radius-2 links cover it in 3.
        assert_eq!(a.hop_distance(PeId::new(0), PeId::new(15)), 3);
    }

    #[test]
    fn baseline_cgra_defaults() {
        let a = Accelerator::cgra("4x4", 4, 4);
        assert_eq!(a.regs_per_pe(), 4);
        assert_eq!(a.max_ii(), 24);
        assert!(!a.is_spatial_only());
        assert!(a.supports(PeId::new(9), OpKind::Load));
        assert!(a.supports(PeId::new(9), OpKind::Div));
    }

    #[test]
    fn left_column_memory() {
        let a = Accelerator::cgra("4x4-lm", 4, 4).with_memory(MemoryConnectivity::LeftColumn);
        for r in 0..4 {
            assert!(a.supports(a.pe_at(Coord { row: r, col: 0 }), OpKind::Store));
            for c in 1..4 {
                assert!(!a.supports(a.pe_at(Coord { row: r, col: c }), OpKind::Load));
                assert!(a.supports(a.pe_at(Coord { row: r, col: c }), OpKind::Mul));
            }
        }
        assert_eq!(a.supporting_pes(OpKind::Load).len(), 4);
    }

    #[test]
    fn systolic_capabilities() {
        let s = Accelerator::systolic("sys", 5, 5);
        assert!(s.is_spatial_only());
        assert_eq!(s.max_ii(), 1);
        // Left column loads only.
        assert!(s.supports(PeId::new(0), OpKind::Load));
        assert!(!s.supports(PeId::new(0), OpKind::Add));
        // Right column stores only.
        let right = s.pe_at(Coord { row: 0, col: 4 });
        assert!(s.supports(right, OpKind::Store));
        assert!(!s.supports(right, OpKind::Mul));
        // Interior: add/sub/mul/const, no div.
        let mid = s.pe_at(Coord { row: 2, col: 2 });
        assert!(s.supports(mid, OpKind::Mul));
        assert!(s.supports(mid, OpKind::Const));
        assert!(!s.supports(mid, OpKind::Div));
        assert!(!s.supports(mid, OpKind::Load));
    }

    #[test]
    fn systolic_links_are_forward_only() {
        let s = Accelerator::systolic("sys", 3, 3);
        // No PE links to its left neighbour.
        for r in 0..3 {
            for c in 1..3 {
                let pe = s.pe_at(Coord { row: r, col: c });
                let left = s.pe_at(Coord { row: r, col: c - 1 });
                assert!(!s.linked(pe, left), "{pe} links left");
                assert!(s.linked(left, pe), "{left} should link right");
            }
        }
    }

    #[test]
    fn paper_suite_has_six_architectures() {
        let suite = Accelerator::paper_suite();
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"8x8"));
        assert!(names.contains(&"systolic-5x5"));
    }

    #[test]
    #[should_panic(expected = "memory connectivity is fixed")]
    fn systolic_rejects_memory_override() {
        let _ = Accelerator::systolic("sys", 5, 5).with_memory(MemoryConnectivity::All);
    }
}

#[cfg(test)]
mod heterogeneity_tests {
    use super::*;

    #[test]
    fn checkerboard_restricts_multipliers() {
        let a = Accelerator::cgra("het", 4, 4).with_heterogeneity(Heterogeneity::CheckerboardMul);
        let mut mul_pes = 0;
        for i in 0..16 {
            let pe = PeId::new(i);
            let c = a.coord(pe);
            let has_mul = a.supports(pe, OpKind::Mul);
            assert_eq!(has_mul, (c.row + c.col) % 2 == 0);
            // Cheap ops remain everywhere.
            assert!(a.supports(pe, OpKind::Add));
            assert!(a.supports(pe, OpKind::Load));
            mul_pes += usize::from(has_mul);
        }
        assert_eq!(mul_pes, 8);
    }

    #[test]
    fn heterogeneity_composes_with_memory_constraint() {
        let a = Accelerator::cgra("both", 4, 4)
            .with_heterogeneity(Heterogeneity::CheckerboardMul)
            .with_memory(MemoryConnectivity::LeftColumn);
        // (0,1): no memory, no mul (parity 1), but add works.
        let pe = a.pe_at(Coord { row: 0, col: 1 });
        assert!(!a.supports(pe, OpKind::Load));
        assert!(!a.supports(pe, OpKind::Mul));
        assert!(a.supports(pe, OpKind::Add));
        // (0,0): memory and mul.
        let pe0 = a.pe_at(Coord { row: 0, col: 0 });
        assert!(a.supports(pe0, OpKind::Store));
        assert!(a.supports(pe0, OpKind::Mul));
    }

    #[test]
    #[should_panic(expected = "PE functions are fixed")]
    fn systolic_rejects_heterogeneity_override() {
        let _ = Accelerator::systolic("s", 5, 5).with_heterogeneity(Heterogeneity::CheckerboardMul);
    }
}

#[cfg(test)]
mod distance_index_tests {
    use super::*;
    use crate::distance::dense_distances;

    /// Fresh all-pairs BFS over an accelerator's live link graph — the
    /// ground truth every index must respect.
    fn bfs_truth(acc: &Accelerator, from: PeId, to: PeId) -> u32 {
        let neighbors: Vec<Vec<PeId>> = (0..acc.pe_count())
            .map(|i| acc.neighbors(PeId::new(i)).to_vec())
            .collect();
        match dense_distances(&neighbors)[from.index() * acc.pe_count() + to.index()] {
            u16::MAX => u32::MAX,
            d => u32::from(d),
        }
    }

    #[test]
    fn auto_mode_follows_pe_count() {
        assert_eq!(
            Accelerator::cgra("8x8", 8, 8).distance_index_kind(),
            "dense"
        );
        assert_eq!(
            Accelerator::cgra("16x16", 16, 16).distance_index_kind(),
            "oracle"
        );
        // 32×32 dense would be 1024² × 2 B = 2 MiB; the oracle stays
        // well under half of that.
        let big = Accelerator::cgra("32x32", 32, 32);
        assert_eq!(big.distance_index_kind(), "oracle");
        let dense_bytes = big.pe_count() * big.pe_count() * 2;
        assert!(big.distance_index_bytes() * 2 < dense_bytes);
    }

    #[test]
    fn forced_oracle_matches_dense_on_small_mesh() {
        // 4×4 diameter (6) fits in the exact ball, so the oracle must
        // reproduce the dense table on every pair.
        let dense = Accelerator::cgra("4x4", 4, 4).with_distance_mode(DistanceMode::Dense);
        let oracle = Accelerator::cgra("4x4", 4, 4).with_distance_mode(DistanceMode::Oracle);
        assert_eq!(dense.distance_index_kind(), "dense");
        assert_eq!(oracle.distance_index_kind(), "oracle");
        for i in 0..16 {
            for j in 0..16 {
                let (i, j) = (PeId::new(i), PeId::new(j));
                assert_eq!(oracle.hop_distance(i, j), dense.hop_distance(i, j));
            }
        }
    }

    #[test]
    fn oracle_on_big_mesh_is_exact_near_and_lower_bound_far() {
        let a = Accelerator::cgra("16x16", 16, 16);
        assert_eq!(a.distance_index_kind(), "oracle");
        for i in 0..a.pe_count() {
            for j in 0..a.pe_count() {
                let (i, j) = (PeId::new(i), PeId::new(j));
                let manhattan = a.spatial_distance(i, j); // exact on a mesh
                let hd = a.hop_distance(i, j);
                if manhattan <= 8 {
                    assert_eq!(hd, manhattan, "{i}->{j} inside the exact ball");
                } else {
                    assert!(hd > 8 && hd <= manhattan, "{i}->{j}: {hd} vs {manhattan}");
                }
            }
        }
    }

    /// A large systolic array is the irregular case: directed links, no
    /// leftward reachability. The oracle must stay exact within its
    /// ball, never overestimate beyond it, and keep proving leftward
    /// unreachability.
    #[test]
    fn oracle_on_big_systolic_respects_direction() {
        let s = Accelerator::systolic("sys-12", 12, 12);
        assert_eq!(s.distance_index_kind(), "oracle");
        for r in 0..12 {
            for c in 1..12 {
                let right = s.pe_at(Coord { row: r, col: c });
                let left = s.pe_at(Coord { row: r, col: 0 });
                assert_eq!(
                    s.hop_distance(right, left),
                    u32::MAX,
                    "leftward at ({r},{c})"
                );
            }
        }
        for i in (0..s.pe_count()).step_by(7) {
            for j in (0..s.pe_count()).step_by(5) {
                let (i, j) = (PeId::new(i), PeId::new(j));
                let truth = bfs_truth(&s, i, j);
                let hd = s.hop_distance(i, j);
                if truth <= 8 {
                    assert_eq!(hd, truth, "{i}->{j} inside the exact ball");
                } else {
                    assert!(hd <= truth, "{i}->{j}: overestimate {hd} > {truth}");
                }
                if hd == u32::MAX {
                    assert_eq!(truth, u32::MAX, "{i}->{j}: false unreachability");
                }
            }
        }
    }

    /// Multi-hop interconnects are non-mesh graphs where hop distance
    /// diverges from Manhattan distance; the oracle must track the BFS
    /// truth, and an interconnect change must preserve the index mode.
    #[test]
    fn oracle_tracks_multihop_interconnect_changes() {
        let a = Accelerator::cgra("16x16", 16, 16)
            .with_interconnect(Interconnect::MultiHop { radius: 3 });
        assert_eq!(a.distance_index_kind(), "oracle");
        for i in (0..a.pe_count()).step_by(11) {
            for j in (0..a.pe_count()).step_by(13) {
                let (i, j) = (PeId::new(i), PeId::new(j));
                let truth = bfs_truth(&a, i, j);
                let hd = a.hop_distance(i, j);
                // Radius-3 links: the 16×16 diameter is ⌈30/3⌉ = 10 > 8,
                // so both regimes are exercised.
                if truth <= 8 {
                    assert_eq!(hd, truth, "{i}->{j} inside the exact ball");
                } else {
                    assert!(hd <= truth, "{i}->{j}: overestimate {hd} > {truth}");
                }
            }
        }
        // A forced mode survives interconnect rebuilds.
        let forced = Accelerator::cgra("16x16", 16, 16)
            .with_distance_mode(DistanceMode::Dense)
            .with_interconnect(Interconnect::MultiHop { radius: 2 });
        assert_eq!(forced.distance_index_kind(), "dense");
    }
}

#[cfg(test)]
mod interconnect_tests {
    use super::*;

    #[test]
    fn multihop_radius_two_reaches_diagonals() {
        let a =
            Accelerator::cgra("hy", 4, 4).with_interconnect(Interconnect::MultiHop { radius: 2 });
        // PE5 (1,1): radius-2 ball minus self.
        let n = a.neighbors(PeId::new(5));
        assert!(n.contains(&PeId::new(0))); // (0,0), distance 2
        assert!(n.contains(&PeId::new(10))); // (2,2), distance 2
        assert!(!n.contains(&PeId::new(15))); // (3,3), distance 4
                                              // Mesh would give 4; radius 2 gives 4 + diagonals + straight-2s.
        assert!(n.len() > 4);
        // Links stay symmetric.
        for &q in n {
            assert!(a.linked(q, PeId::new(5)));
        }
    }

    #[test]
    fn radius_one_equals_mesh() {
        let mesh = Accelerator::cgra("m", 3, 3);
        let hop1 =
            Accelerator::cgra("m", 3, 3).with_interconnect(Interconnect::MultiHop { radius: 1 });
        for i in 0..9 {
            assert_eq!(mesh.neighbors(PeId::new(i)), hop1.neighbors(PeId::new(i)));
        }
    }

    #[test]
    #[should_panic(expected = "links are fixed on systolic arrays")]
    fn systolic_rejects_interconnect_override() {
        let _ = Accelerator::systolic("s", 5, 5).with_interconnect(Interconnect::Mesh);
    }
}
