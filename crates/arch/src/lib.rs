//! Spatial accelerator models for the LISA reproduction.
//!
//! This crate models the six accelerators of the paper's evaluation (§VI):
//! mesh CGRAs of several sizes and resource configurations, and a 5×5
//! systolic array with Revel-like basic units. It also provides the
//! *modulo routing resource graph* ([`Mrrg`]) the mappers place and route
//! on, and the analytical power model behind the Fig. 10 power-efficiency
//! comparison.
//!
//! # Example
//!
//! ```
//! use lisa_arch::{Accelerator, PeId};
//!
//! let cgra = Accelerator::cgra("4x4", 4, 4);
//! assert_eq!(cgra.pe_count(), 16);
//! assert_eq!(cgra.regs_per_pe(), 4);
//! // Interior PEs have four mesh neighbours.
//! let center = PeId::new(5);
//! assert_eq!(cgra.neighbors(center).len(), 4);
//! ```

mod accelerator;
mod distance;
mod error;
mod mrrg;
mod pe;
pub mod power;

pub use accelerator::{
    Accelerator, AcceleratorKind, Heterogeneity, Interconnect, MemoryConnectivity,
};
pub use distance::DistanceMode;
pub use error::ArchError;
pub use mrrg::{Mrrg, Resource};
pub use pe::{Coord, PeId};
