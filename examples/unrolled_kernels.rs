//! Unrolled-kernel stress test (the paper's Fig. 9d scenario): unrolling
//! by 2 doubles the DFG size and density, which is where vanilla SA starts
//! failing while LISA's global view keeps mapping.
//!
//! Run with: `cargo run --release --example unrolled_kernels`

use lisa_arch::Accelerator;
use lisa_core::{Lisa, LisaConfig};
use lisa_dfg::{polybench, unroll::unroll};
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{SaMapper, SaParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acc = Accelerator::cgra("4x4", 4, 4);
    eprintln!("training LISA for {} ...", acc.name());
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast())?;

    println!(
        "{:<12} {:>6} {:>7} {:>7} {:>7}",
        "kernel", "nodes", "SA", "LISA", "winner"
    );
    for name in ["atax", "gemm", "mvt", "symm"] {
        let body = polybench::kernel(name)?;
        let dfg = unroll(&body, 2);

        let mut sa = SaMapper::new(SaParams::paper(), 1);
        let sa_outcome = IiSearch { max_ii: Some(16) }.run(&mut sa, &dfg, &acc);
        let (lisa_outcome, mapping) = lisa.map_capped(&dfg, &acc, 16);
        if let Some(m) = &mapping {
            m.verify().expect("mapping invariants hold");
        }

        let winner = match (sa_outcome.ii, lisa_outcome.ii) {
            (Some(s), Some(l)) if l < s => "LISA",
            (Some(s), Some(l)) if s < l => "SA",
            (Some(_), Some(_)) => "tie",
            (None, Some(_)) => "LISA",
            (Some(_), None) => "SA",
            (None, None) => "-",
        };
        println!(
            "{:<12} {:>6} {:>7} {:>7} {:>7}",
            dfg.name(),
            dfg.node_count(),
            sa_outcome.ii.map_or("fail".to_string(), |v| v.to_string()),
            lisa_outcome
                .ii
                .map_or("fail".to_string(), |v| v.to_string()),
            winner
        );
    }
    Ok(())
}
