//! Quickstart: train LISA for a 4×4 CGRA and map a PolyBench kernel.
//!
//! Run with: `cargo run --release --example quickstart`

use lisa_arch::Accelerator;
use lisa_core::{Lisa, LisaConfig};
use lisa_dfg::polybench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The accelerator: a 4x4 mesh CGRA with 4 registers per PE and 24
    // configuration entries (the paper's baseline).
    let acc = Accelerator::cgra("4x4", 4, 4);

    // Train the GNN label models for this accelerator. `fast()` keeps the
    // example under a minute; `LisaConfig::default()` is experiment-scale.
    println!("training LISA for {acc} ...");
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast())?;
    let stats = lisa.stats();
    println!(
        "  {} training DFGs kept, label accuracies {}",
        stats.dfgs_kept,
        stats.accuracy.summary()
    );

    // Map a real kernel: the GNN derives the four guidance labels and the
    // label-aware simulated annealer searches IIs from the minimum up.
    let dfg = polybench::kernel("gemm")?;
    println!(
        "mapping {} ({} nodes, {} edges) ...",
        dfg.name(),
        dfg.node_count(),
        dfg.edge_count()
    );
    let (outcome, mapping) = lisa.map(&dfg, &acc);
    match outcome.ii {
        Some(ii) => {
            let m = mapping.expect("outcome and mapping agree");
            m.verify().expect("mapping invariants hold");
            println!(
                "  mapped at II {ii} in {:.2?} ({} routing cells)",
                outcome.compile_time, outcome.routing_cells
            );
        }
        None => println!("  could not map within the configuration depth"),
    }
    Ok(())
}
