//! The Fig. 2 pipeline, step by step, for a *new* accelerator — here a
//! 3×5 CGRA that appears nowhere in the paper. This walks the three
//! stages explicitly instead of calling `Lisa::train_for`, so you can see
//! (and customise) each piece. The packaged equivalent — with progress
//! events, checkpointed artifacts, and resume — is
//! `lisa_core::Pipeline`.
//!
//! Run with: `cargo run --release --example train_new_accelerator`

use lisa_arch::Accelerator;
use lisa_dfg::{polybench, random, RandomDfgConfig};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};
use lisa_gnn::TrainConfig;
use lisa_labels::attributes::{DUMMY_ATTR_DIM, EDGE_ATTR_DIM, NODE_ATTR_DIM};
use lisa_labels::{filter, generate_labels, FilterConfig, IterGenConfig, TrainingSet};
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acc = Accelerator::cgra("3x5", 3, 5);
    println!("target: {acc}");

    // ── Stage 1: training-data generation (paper §V) ────────────────────
    // Synthetic DFGs, labelled by the iterative partial-label-aware SA,
    // filtered by e = O + σ·N.
    let dfg_config = RandomDfgConfig::default();
    let raw = random::generate_dataset(&dfg_config, 99, 24);
    println!("stage 1: generated {} raw DFGs", raw.len());

    let iter_config = IterGenConfig::fast();
    let filter_config = FilterConfig::default();
    let mut training = TrainingSet::new();
    let mut kept = 0;
    for dfg in &raw {
        if let Some(generated) = generate_labels(dfg, &acc, &iter_config) {
            if filter::accept(&generated, &filter_config) {
                training.push(dfg, &generated.labels);
                kept += 1;
            }
        }
    }
    println!(
        "stage 1: {kept} DFGs survived the label filter \
         ({} node graphs, {} edge samples)",
        training.node_graphs.len(),
        training.temporal.len()
    );

    // ── Stage 2: GNN model construction (paper §IV) ─────────────────────
    let train_cfg = TrainConfig {
        epochs: 60,
        ..TrainConfig::paper()
    };
    let mut schedule_net = ScheduleOrderNet::new(NODE_ATTR_DIM, 1);
    let mut same_level_net = EdgeMlp::new(DUMMY_ATTR_DIM, 2);
    let mut spatial_net = SpatialNet::new(EDGE_ATTR_DIM, 3);
    let mut temporal_net = EdgeMlp::new(EDGE_ATTR_DIM, 4);
    let r1 = schedule_net.train(&training.node_graphs, &train_cfg);
    let r2 = same_level_net.train(&training.same_level, &train_cfg);
    let r3 = spatial_net.train(&training.spatial, &train_cfg);
    let r4 = temporal_net.train(&training.temporal, &train_cfg);
    println!(
        "stage 2: final losses  label1 {:.3}  label2 {:.3}  label3 {:.3}  label4 {:.3}",
        r1.final_loss(),
        r2.final_loss(),
        r3.final_loss(),
        r4.final_loss()
    );

    // ── Stage 3: label-aware mapping of a real kernel (paper §III) ──────
    // Derive labels for a new DFG with the trained nets and map. (The
    // `Lisa` facade bundles exactly this; shown inline for transparency.)
    let dfg = polybench::kernel("mvt")?;
    let attrs = lisa_labels::DfgAttributes::generate(&dfg);
    let node_sample = lisa_gnn::dataset::NodeGraphSample {
        node_attrs: attrs.node.clone(),
        neighbors: lisa_labels::DfgAttributes::adjacency(&dfg),
        targets: vec![0.0; dfg.node_count()],
    };
    let labels = GuidanceLabels {
        schedule_order: schedule_net.predict(&node_sample),
        same_level: attrs
            .dummy_edges
            .iter()
            .zip(&attrs.dummy)
            .map(|(d, a)| (d.a, d.b, same_level_net.predict(a).max(0.0)))
            .collect(),
        spatial: dfg
            .edge_ids()
            .map(|e| {
                let ctx = lisa_gnn::dataset::ContextEdgeSample {
                    attrs: attrs.edge[e.index()].clone(),
                    neighbor_attrs: attrs.edge_neighborhood(&dfg, e),
                    target: 0.0,
                };
                spatial_net.predict(&ctx).max(0.0)
            })
            .collect(),
        temporal: dfg
            .edge_ids()
            .map(|e| temporal_net.predict(&attrs.edge[e.index()]).max(1.0))
            .collect(),
    };
    let mut mapper = LabelSaMapper::new(labels, SaParams::fast(), 7);
    let outcome = IiSearch { max_ii: Some(12) }.run(&mut mapper, &dfg, &acc);
    println!(
        "stage 3: {} on {} -> II {:?} in {:.2?}",
        dfg.name(),
        acc.name(),
        outcome.ii,
        outcome.compile_time
    );
    Ok(())
}
