//! Portability demo: the same compiler framework retargets three very
//! different accelerators by retraining the label GNNs — no handcrafted
//! per-architecture heuristics (the paper's core claim).
//!
//! Run with: `cargo run --release --example portable_mapping`

use lisa_arch::{Accelerator, MemoryConnectivity};
use lisa_core::{Lisa, LisaConfig};
use lisa_dfg::polybench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let architectures = [
        Accelerator::cgra("4x4", 4, 4),
        Accelerator::cgra("4x4-lr", 4, 4).with_regs_per_pe(1),
        Accelerator::cgra("4x4-lm", 4, 4).with_memory(MemoryConnectivity::LeftColumn),
    ];
    let kernels = ["gemm", "mvt", "doitgen"];

    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "kernel", "4x4", "4x4-lr", "4x4-lm"
    );
    let mut rows: Vec<Vec<String>> = kernels.iter().map(|k| vec![(*k).to_string()]).collect();

    for acc in &architectures {
        // One retraining per accelerator — this is all the "porting" LISA
        // needs (paper Fig. 2: the GNN adapts the labels to the target).
        eprintln!("retraining for {} ...", acc.name());
        let lisa = Lisa::train_for(acc, &LisaConfig::fast())?;
        for (row, kernel) in rows.iter_mut().zip(&kernels) {
            let dfg = polybench::kernel(kernel)?;
            let (outcome, _) = lisa.map_capped(&dfg, acc, 12);
            row.push(match outcome.ii {
                Some(ii) => format!("II={ii}"),
                None => "fail".to_string(),
            });
        }
    }

    for row in rows {
        println!("{:<10} {:>8} {:>8} {:>8}", row[0], row[1], row[2], row[3]);
    }
    println!("\nEach column used the same framework — only the training data");
    println!("(synthetic DFGs mapped on that architecture) differed.");
    Ok(())
}
