//! Integration tests for the staged training pipeline: checkpoint
//! artifacts, kill-and-resume byte-identity, and typed failures.

use std::path::PathBuf;
use std::sync::Arc;

use lisa::arch::Accelerator;
use lisa::core::{
    Lisa, LisaConfig, Pipeline, Stage, TrainError, DATASET_FILE, DFGS_FILE, MODEL_FILE,
};
use lisa::events::{EventSink, PipelineEvent, RecordingObserver};

/// A pipeline config small enough to run three times in one test.
fn tiny_config() -> LisaConfig {
    LisaConfig {
        training_dfgs: 6,
        ..LisaConfig::fast()
    }
}

/// Fresh scratch directory for one test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-pipeline-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn resumed_run_exports_a_byte_identical_model() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let config = tiny_config();

    // Reference: one cold, uncheckpointed run.
    let cold = Pipeline::new(&acc, config.clone())
        .run()
        .unwrap()
        .expect("cold run completes");
    let cold_model = cold.export_model();

    // "Killed" run: checkpoint through the label stage, then chop the
    // dataset file mid-entry, as a kill during a flush would.
    let dir = scratch("resume");
    let stopped = Pipeline::new(&acc, config.clone())
        .with_checkpoint_dir(&dir)
        .stop_after(Stage::GenerateLabels)
        .run()
        .unwrap();
    assert!(stopped.is_none(), "stop_after returns no model");
    let dataset_path = dir.join(DATASET_FILE);
    let full = std::fs::read_to_string(&dataset_path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let cut = lines.len() * 3 / 5;
    std::fs::write(&dataset_path, format!("{}\n", lines[..cut].join("\n"))).unwrap();

    // Resume and observe which entries were recovered vs regenerated.
    let recorder = Arc::new(RecordingObserver::default());
    let resumed = Pipeline::new(&acc, config)
        .with_checkpoint_dir(&dir)
        .with_observer(EventSink::new(recorder.clone()))
        .run()
        .unwrap()
        .expect("resumed run completes");

    assert_eq!(
        resumed.export_model(),
        cold_model,
        "resumed model differs from the cold run"
    );
    // The Evaluate stage persisted the same bytes.
    assert_eq!(
        std::fs::read_to_string(dir.join(MODEL_FILE)).unwrap(),
        cold_model
    );
    let events = recorder.take();
    let resumed_entries = events
        .iter()
        .filter(|e| matches!(e, PipelineEvent::LabelGenFinished { resumed: true, .. }))
        .count();
    let fresh_entries = events
        .iter()
        .filter(|e| matches!(e, PipelineEvent::LabelGenFinished { resumed: false, .. }))
        .count();
    assert!(resumed_entries >= 1, "no entry was recovered");
    assert!(fresh_entries >= 1, "no entry was regenerated");
    assert_eq!(resumed_entries + fresh_entries, 6);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_survives_a_kill_at_any_rewrite_point() {
    // Regression for the checkpoint crash window: resume used to truncate
    // the dataset file and re-append the recovered entries, so a kill
    // between the truncate and the last re-append destroyed the
    // checkpoint. Now the rewrite either truncates only the torn tail in
    // place or goes through an atomic rename, so a kill at any point —
    // including immediately after a resume opened the file — leaves a
    // recoverable dataset that still trains to a byte-identical model.
    let acc = Accelerator::cgra("4x4", 4, 4);
    let config = tiny_config();
    let cold_model = Pipeline::new(&acc, config.clone())
        .run()
        .unwrap()
        .expect("cold run completes")
        .export_model();

    let dir = scratch("crash-window");
    Pipeline::new(&acc, config.clone())
        .with_checkpoint_dir(&dir)
        .stop_after(Stage::GenerateLabels)
        .run()
        .unwrap();
    let dataset_path = dir.join(DATASET_FILE);
    let full = std::fs::read_to_string(&dataset_path).unwrap();

    // Kill points: header only, an exact entry boundary, and mid-entry.
    let boundary = full[full.len() / 3..]
        .find("end entry\n")
        .map(|i| full.len() / 3 + i + "end entry\n".len())
        .expect("dataset has an entry boundary");
    let header_len = full.match_indices('\n').nth(2).map(|(i, _)| i + 1).unwrap();
    for (label, cut) in [
        ("header-only", header_len),
        ("entry-boundary", boundary),
        ("mid-entry", boundary + 37),
    ] {
        std::fs::write(&dataset_path, &full[..cut]).unwrap();

        // Simulate a resume that is itself killed right after reopening
        // the checkpoint, before appending anything: the file must stay
        // recoverable for the next attempt.
        let recovered =
            lisa::labels::parse_dataset_partial(&std::fs::read_to_string(&dataset_path).unwrap())
                .unwrap();
        let writer =
            lisa::labels::DatasetWriter::resume(&dataset_path, "4x4", 6, &recovered.entries)
                .unwrap();
        drop(writer);

        let resumed = Pipeline::new(&acc, config.clone())
            .with_checkpoint_dir(&dir)
            .run()
            .unwrap()
            .expect("resumed run completes");
        assert_eq!(
            resumed.export_model(),
            cold_model,
            "kill point {label}: resumed model differs from the cold run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_run_leaves_complete_artifacts() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let dir = scratch("artifacts");
    let lisa = Pipeline::new(&acc, tiny_config())
        .with_checkpoint_dir(&dir)
        .run()
        .unwrap()
        .expect("run completes");

    let dfgs =
        lisa::dfg::text::parse_dfg_set(&std::fs::read_to_string(dir.join(DFGS_FILE)).unwrap())
            .unwrap();
    assert_eq!(dfgs.len(), 6);
    let dataset =
        lisa::labels::parse_dataset(&std::fs::read_to_string(dir.join(DATASET_FILE)).unwrap())
            .unwrap();
    assert!(dataset.is_complete());
    assert_eq!(dataset.accelerator, "4x4");
    for (entry, dfg) in dataset.entries.iter().zip(&dfgs) {
        assert_eq!(&entry.dfg, dfg, "dataset and DFG artifacts disagree");
    }
    let model_text = std::fs::read_to_string(dir.join(MODEL_FILE)).unwrap();
    assert_eq!(model_text, lisa.export_model());
    let restored = Lisa::import_model(&tiny_config(), &model_text).unwrap();
    assert_eq!(restored.accelerator_name(), "4x4");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_surviving_dataset_is_a_typed_error() {
    // A 1x1 fabric with a capped config depth cannot map the 6-12 node
    // training DFGs, so nothing survives and training must fail loudly.
    let acc = Accelerator::cgra("1x1", 1, 1).with_max_ii(2);
    let err = Lisa::train_for(&acc, &tiny_config()).unwrap_err();
    match err {
        TrainError::EmptyDataset {
            generated,
            labelled,
        } => {
            assert_eq!(generated, 6);
            assert_eq!(labelled, 0);
        }
        other => panic!("expected EmptyDataset, got {other}"),
    }
}

#[test]
fn resume_rejects_a_mismatched_checkpoint() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let dir = scratch("mismatch");
    Pipeline::new(&acc, tiny_config())
        .with_checkpoint_dir(&dir)
        .stop_after(Stage::GenerateLabels)
        .run()
        .unwrap();

    // A different seed regenerates different DFGs: resuming must refuse
    // rather than silently splice datasets from two different runs.
    let other_seed = LisaConfig {
        seed: 777,
        ..tiny_config()
    };
    let err = Pipeline::new(&acc, other_seed)
        .with_checkpoint_dir(&dir)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, TrainError::ResumeMismatch { .. }),
        "expected ResumeMismatch, got {err}"
    );

    // A different accelerator must be refused too.
    let other_acc = Accelerator::cgra("3x3", 3, 3);
    let err = Pipeline::new(&other_acc, tiny_config())
        .with_checkpoint_dir(&dir)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, TrainError::ResumeMismatch { .. }),
        "expected ResumeMismatch, got {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observer_does_not_change_the_trained_model() {
    let acc = Accelerator::cgra("3x3", 3, 3);
    let config = tiny_config();
    let silent = Pipeline::new(&acc, config.clone()).run().unwrap().unwrap();
    let recorder = Arc::new(RecordingObserver::default());
    let observed = Pipeline::new(&acc, config)
        .with_observer(EventSink::new(recorder.clone()))
        .run()
        .unwrap()
        .unwrap();
    assert_eq!(silent.export_model(), observed.export_model());

    // The stage events bracket the run in order.
    let events = recorder.take();
    let stages: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::StageStarted { stage } => Some(*stage),
            _ => None,
        })
        .collect();
    let expected: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(stages, expected);
    assert!(events
        .iter()
        .any(|e| matches!(e, PipelineEvent::EpochLoss { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, PipelineEvent::FilterDecision { .. })));
}
