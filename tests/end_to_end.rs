//! Cross-crate integration tests: the full Fig. 2 pipeline, from synthetic
//! training data to verified mappings of real kernels.

use lisa::arch::Accelerator;
use lisa::core::{Lisa, LisaConfig};
use lisa::dfg::polybench;
use lisa::mapper::schedule::{mii, IiSearch};
use lisa::mapper::{SaMapper, SaParams};

#[test]
fn train_predict_map_verify_on_4x4() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();

    for name in ["doitgen", "gemm", "mvt"] {
        let dfg = polybench::kernel(name).unwrap();
        let labels = lisa.predict_labels(&dfg);
        assert!(labels.matches(&dfg), "{name}: label shape mismatch");
        // Physical consistency enforced by prediction post-processing.
        for (s, t) in labels.spatial.iter().zip(&labels.temporal) {
            assert!(t >= s, "{name}: temporal {t} < spatial {s}");
            assert!(*t >= 1.0);
        }
        let (outcome, mapping) = lisa.map_capped(&dfg, &acc, 10);
        assert!(outcome.mapped(), "{name} failed to map");
        let m = mapping.unwrap();
        m.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(outcome.ii.unwrap() >= mii(&dfg, &acc));
    }
}

#[test]
fn lisa_matches_or_beats_sa_on_small_kernels() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
    let search = IiSearch { max_ii: Some(12) };

    let mut lisa_total = 0u32;
    let mut sa_total = 0u32;
    for name in ["doitgen", "gemm", "atax", "trmm"] {
        let dfg = polybench::kernel(name).unwrap();
        let (lisa_outcome, _) = lisa.map_capped(&dfg, &acc, 12);
        let mut sa = SaMapper::new(SaParams::fast(), 5);
        let sa_outcome = search.run(&mut sa, &dfg, &acc);
        lisa_total += lisa_outcome.ii.unwrap_or(13);
        sa_total += sa_outcome.ii.unwrap_or(13);
    }
    // Aggregate comparison is robust to single-kernel noise: LISA's total
    // II across the easy kernels must not be worse than 1.5x SA's.
    assert!(
        f64::from(lisa_total) <= f64::from(sa_total) * 1.5,
        "LISA total II {lisa_total} vs SA {sa_total}"
    );
}

#[test]
fn systolic_pipeline_end_to_end() {
    let acc = Accelerator::systolic("systolic-5x5", 5, 5);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast().for_systolic()).unwrap();
    // At least the simplest core must map on the systolic array.
    let dfg = polybench::kernel_core("doitgen").unwrap();
    let (outcome, mapping) = lisa.map(&dfg, &acc);
    assert!(
        outcome.mapped(),
        "doitgen-core must map on the systolic array"
    );
    assert_eq!(outcome.ii, Some(1), "systolic arrays are spatial-only");
    mapping.unwrap().verify().unwrap();
}

#[test]
fn accuracy_report_has_four_fractions() {
    let acc = Accelerator::cgra("3x3", 3, 3);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
    let report = lisa.stats();
    assert_eq!(report.accuracy.values.len(), 4);
    for v in report.accuracy.values {
        let v = v.expect("trained model has measured accuracies");
        assert!((0.0..=1.0).contains(&v));
    }
    assert!(report.dfgs_generated >= report.dfgs_labelled);
    assert!(report.dfgs_labelled >= report.dfgs_kept);
}

#[test]
fn unrolled_kernel_maps_on_8x8() {
    // The Fig. 9f scenario at test scale: one unrolled kernel on the big
    // array, which has plenty of resources.
    let acc = Accelerator::cgra("8x8", 8, 8);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
    let dfg = lisa::dfg::unroll::unroll(&polybench::kernel("gemm").unwrap(), 2);
    let (outcome, mapping) = lisa.map_capped(&dfg, &acc, 10);
    assert!(outcome.mapped(), "gemm_u2 must map on an 8x8 CGRA");
    mapping.unwrap().verify().unwrap();
}
