//! Cross-mapper contracts: the exact mapper's optimality, agreement
//! between outcome metrics and mapping state, and the II search driver's
//! guarantees — spanning `lisa-dfg`, `lisa-arch`, and `lisa-mapper`.

use lisa::arch::Accelerator;
use lisa::dfg::{Dfg, OpKind};
use lisa::mapper::exact::{ExactMapper, ExactParams};
use lisa::mapper::schedule::{mii, IiSearch};
use lisa::mapper::{GuidanceLabels, LabelSaMapper, SaMapper, SaParams};

fn tiny_graphs() -> Vec<Dfg> {
    let mut graphs = Vec::new();

    let mut chain = Dfg::new("chain");
    let a = chain.add_node(OpKind::Load, "a");
    let b = chain.add_node(OpKind::Add, "b");
    let c = chain.add_node(OpKind::Store, "c");
    chain.add_data_edge(a, b).unwrap();
    chain.add_data_edge(b, c).unwrap();
    graphs.push(chain);

    let mut diamond = Dfg::new("diamond");
    let a = diamond.add_node(OpKind::Load, "a");
    let b = diamond.add_node(OpKind::Add, "b");
    let c = diamond.add_node(OpKind::Mul, "c");
    let d = diamond.add_node(OpKind::Store, "d");
    diamond.add_data_edge(a, b).unwrap();
    diamond.add_data_edge(a, c).unwrap();
    diamond.add_data_edge(b, d).unwrap();
    diamond.add_data_edge(c, d).unwrap();
    graphs.push(diamond);

    let mut mac = Dfg::new("mac");
    let x = mac.add_node(OpKind::Load, "x");
    let y = mac.add_node(OpKind::Load, "y");
    let m = mac.add_node(OpKind::Mul, "m");
    let acc = mac.add_node(OpKind::Add, "acc");
    mac.add_data_edge(x, m).unwrap();
    mac.add_data_edge(y, m).unwrap();
    mac.add_data_edge(m, acc).unwrap();
    mac.add_recurrence_edge(acc, acc, 1).unwrap();
    graphs.push(mac);

    graphs
}

#[test]
fn exact_ii_is_a_lower_bound_for_heuristics() {
    let acc = Accelerator::cgra("2x2", 2, 2);
    for dfg in tiny_graphs() {
        let mut ilp = ExactMapper::new(ExactParams::default());
        let exact = IiSearch { max_ii: Some(12) }.run(&mut ilp, &dfg, &acc);
        let exact_ii = exact
            .ii
            .unwrap_or_else(|| panic!("exact mapper must solve the tiny graph {}", dfg.name()));

        let mut sa = SaMapper::new(SaParams::paper(), 3);
        let sa_outcome = IiSearch { max_ii: Some(12) }.run(&mut sa, &dfg, &acc);
        if let Some(sa_ii) = sa_outcome.ii {
            assert!(
                sa_ii >= exact_ii,
                "{}: SA found II {sa_ii} below the exact optimum {exact_ii}",
                dfg.name()
            );
        }

        let labels = GuidanceLabels::initial(&dfg);
        let mut lisa = LabelSaMapper::new(labels, SaParams::paper(), 3);
        let lisa_outcome = IiSearch { max_ii: Some(12) }.run(&mut lisa, &dfg, &acc);
        if let Some(lisa_ii) = lisa_outcome.ii {
            assert!(lisa_ii >= exact_ii, "{}: LISA beat the optimum", dfg.name());
        }
    }
}

#[test]
fn outcome_metrics_agree_with_mapping_state() {
    let acc = Accelerator::cgra("3x3", 3, 3);
    for dfg in tiny_graphs() {
        let mut sa = SaMapper::new(SaParams::paper(), 1);
        let (outcome, mapping) =
            IiSearch { max_ii: Some(12) }.run_with_mapping(&mut sa, &dfg, &acc);
        let m = mapping.expect("tiny graphs map");
        assert_eq!(outcome.ii, Some(m.ii()));
        assert_eq!(outcome.routing_cells, m.routing_cells());
        assert_eq!(outcome.ops, dfg.op_count());
        let activity = m.activity();
        assert_eq!(outcome.activity, activity);
        assert_eq!(activity.compute_slots, dfg.node_count());
        assert_eq!(activity.route_slots + activity.reg_slots, m.routing_cells());
    }
}

#[test]
fn search_starts_at_mii() {
    let acc = Accelerator::cgra("2x2", 2, 2);
    // 9 nodes on 4 PEs: ResMII = 3.
    let mut g = Dfg::new("nine");
    let root = g.add_node(OpKind::Load, "n0");
    for i in 1..9 {
        let n = g.add_node(OpKind::Add, format!("n{i}"));
        if i <= 2 {
            g.add_data_edge(root, n).unwrap();
        } else {
            g.add_data_edge(lisa::dfg::NodeId::new(i - 2), n).unwrap();
        }
    }
    assert_eq!(mii(&g, &acc), 3);
    let mut sa = SaMapper::new(SaParams::paper(), 2);
    let outcome = IiSearch { max_ii: Some(12) }.run(&mut sa, &g, &acc);
    if let Some(ii) = outcome.ii {
        assert!(ii >= 3);
    }
}

#[test]
fn memory_constrained_cgra_keeps_loads_on_left_column() {
    let acc =
        Accelerator::cgra("4x4-lm", 4, 4).with_memory(lisa::arch::MemoryConnectivity::LeftColumn);
    let dfg = lisa::dfg::polybench::kernel("doitgen").unwrap();
    let mut sa = SaMapper::new(SaParams::paper(), 4);
    let (outcome, mapping) = IiSearch { max_ii: Some(12) }.run_with_mapping(&mut sa, &dfg, &acc);
    assert!(outcome.mapped(), "doitgen maps on the left-column CGRA");
    let m = mapping.unwrap();
    m.verify().unwrap();
    for v in dfg.node_ids() {
        if dfg.node(v).op.is_memory() {
            let p = m.placement(v).unwrap();
            assert_eq!(
                acc.coord(p.pe).col,
                0,
                "memory op {v} placed off the left column"
            );
        }
    }
}

#[test]
fn systolic_maps_only_supported_shapes() {
    let acc = Accelerator::systolic("sys", 5, 5);
    // A kernel with division can never map on the systolic array.
    let mut g = Dfg::new("divy");
    let a = g.add_node(OpKind::Load, "a");
    let d = g.add_node(OpKind::Div, "d");
    let s = g.add_node(OpKind::Store, "s");
    g.add_data_edge(a, d).unwrap();
    g.add_data_edge(d, s).unwrap();
    let mut sa = SaMapper::new(SaParams::paper(), 0);
    let outcome = IiSearch::default().run(&mut sa, &g, &acc);
    assert!(!outcome.mapped());

    // The doitgen compute core does map.
    let core = lisa::dfg::polybench::kernel_core("doitgen").unwrap();
    let mut sa = SaMapper::new(SaParams::paper(), 0);
    let (outcome, mapping) = IiSearch::default().run_with_mapping(&mut sa, &core, &acc);
    assert!(outcome.mapped(), "doitgen-core maps on the systolic array");
    mapping.unwrap().verify().unwrap();
}

#[test]
fn heterogeneous_cgra_places_muls_on_capable_pes() {
    use lisa::arch::Heterogeneity;
    let acc = Accelerator::cgra("4x4-het", 4, 4).with_heterogeneity(Heterogeneity::CheckerboardMul);
    let dfg = lisa::dfg::polybench::kernel("gemm").unwrap();
    let mut sa = SaMapper::new(SaParams::paper(), 8);
    let (outcome, mapping) = IiSearch { max_ii: Some(12) }.run_with_mapping(&mut sa, &dfg, &acc);
    assert!(outcome.mapped(), "gemm maps on the heterogeneous 4x4");
    let m = mapping.unwrap();
    m.verify().unwrap();
    for v in dfg.node_ids() {
        if dfg.node(v).op == OpKind::Mul {
            let p = m.placement(v).unwrap();
            let c = acc.coord(p.pe);
            assert_eq!((c.row + c.col) % 2, 0, "mul on incapable PE {p:?}");
        }
    }
}

#[test]
fn multihop_interconnect_reduces_or_preserves_ii() {
    use lisa::arch::Interconnect;
    let mesh = Accelerator::cgra("m", 4, 4);
    let hop = Accelerator::cgra("h", 4, 4).with_interconnect(Interconnect::MultiHop { radius: 2 });
    let dfg = lisa::dfg::polybench::kernel("syr2k").unwrap();
    let run = |acc: &Accelerator| {
        let mut sa = SaMapper::new(SaParams::paper(), 3);
        IiSearch { max_ii: Some(12) }.run(&mut sa, &dfg, acc)
    };
    let (m, h) = (run(&mesh), run(&hop));
    assert!(m.mapped() && h.mapped());
    // Strictly more routing reach can only help (same seed, same budget,
    // aggregate comparison would be noisy: allow a 1-II tolerance).
    assert!(h.ii.unwrap() <= m.ii.unwrap() + 1);
}

#[test]
fn utilization_reflects_mapping_density() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let dfg = lisa::dfg::polybench::kernel("syr2k").unwrap();
    let mut sa = SaMapper::new(SaParams::paper(), 5);
    let (_, mapping) = IiSearch { max_ii: Some(12) }.run_with_mapping(&mut sa, &dfg, &acc);
    let m = mapping.expect("syr2k maps");
    let u = m.utilization();
    let total_fu: usize = u.busy_fu_slots.iter().sum();
    // Every node occupies one FU slot; routes may add more.
    assert!(total_fu >= dfg.node_count());
    assert!(u.mean_fu_occupancy() > 0.0 && u.peak_fu_occupancy() <= 1.0);
}
