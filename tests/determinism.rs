//! Cross-run determinism: the hermetic RNG guarantees that identically
//! seeded runs are *byte-identical*, not merely equal under `PartialEq`.
//! The paper's evaluation protocol (seeded SA, median-of-three) and every
//! recorded experiment trajectory depend on this.

use lisa::arch::Accelerator;
use lisa::dfg::{generate_random_dfg, polybench, RandomDfgConfig};
use lisa::mapper::schedule::{IiMapper, IiSearch};
use lisa::mapper::{GuidanceLabels, LabelSaMapper, PortfolioParams, SaMapper, SaParams};

/// Two generator runs with the same seed produce byte-identical DFGs
/// (compared through their full debug rendering, which covers nodes,
/// edges, ops, and names).
#[test]
fn random_dfg_runs_are_byte_identical() {
    let cfg = RandomDfgConfig::default();
    for seed in [0, 1, 7, 2022, 99_999] {
        let a = format!("{:?}", generate_random_dfg(&cfg, seed));
        let b = format!("{:?}", generate_random_dfg(&cfg, seed));
        assert_eq!(a.as_bytes(), b.as_bytes(), "seed {seed} diverged");
    }
}

/// Two full SA mapping runs with the same seed produce byte-identical
/// mappings, including routing state — placements alone could mask a
/// divergent router.
#[test]
fn sa_mapper_runs_are_byte_identical() {
    let cfg = RandomDfgConfig {
        min_nodes: 6,
        max_nodes: 12,
        ..RandomDfgConfig::default()
    };
    let acc = Accelerator::cgra("3x3", 3, 3);
    for seed in [3, 17, 2022] {
        let dfg = generate_random_dfg(&cfg, seed);
        let run = |s: u64| {
            let mut sa = SaMapper::new(SaParams::fast(), s);
            let (outcome, mapping) =
                IiSearch { max_ii: Some(10) }.run_with_mapping(&mut sa, &dfg, &acc);
            // `compile_time` is wall-clock and legitimately varies between
            // runs; everything else must be byte-identical.
            format!(
                "ii={:?} routing_cells={} activity={:?} ops={} attempts={}\n{mapping:?}",
                outcome.ii, outcome.routing_cells, outcome.activity, outcome.ops, outcome.attempts
            )
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.as_bytes(), b.as_bytes(), "seed {seed} diverged");
    }
}

/// The deterministic portfolio's contract: a 4-chain portfolio produces a
/// byte-identical mapping whether the chains (and the speculative II
/// search around them) run on 1 worker or 4. Covered for both annealing
/// mappers on a polybench kernel, so the whole parallel path — `par_map`,
/// wave-based II search, chain seeding, winner selection — is pinned.
#[test]
fn portfolio_is_thread_count_invariant() {
    let dfg = polybench::kernel("doitgen").unwrap();
    let acc = Accelerator::cgra("4x4", 4, 4);
    let search = IiSearch { max_ii: Some(8) };
    let render = |outcome: &lisa::mapper::MappingOutcome,
                  mapping: &Option<lisa::mapper::Mapping>| {
        format!(
            "ii={:?} routing_cells={} attempts={}\n{mapping:?}",
            outcome.ii, outcome.routing_cells, outcome.attempts
        )
    };
    let sa_run = |threads: usize| {
        let mapper = SaMapper::new(SaParams::fast(), 2022)
            .with_portfolio(PortfolioParams::new(4).with_parallelism(threads));
        let (outcome, mapping) = search.run_with_mapping_par(&mapper, &dfg, &acc, threads);
        render(&outcome, &mapping)
    };
    assert_eq!(sa_run(1).as_bytes(), sa_run(4).as_bytes(), "SA diverged");

    let lisa_run = |threads: usize| {
        let mapper = LabelSaMapper::new(GuidanceLabels::initial(&dfg), SaParams::fast(), 2022)
            .with_portfolio(PortfolioParams::new(4).with_parallelism(threads));
        let (outcome, mapping) = search.run_with_mapping_par(&mapper, &dfg, &acc, threads);
        render(&outcome, &mapping)
    };
    assert_eq!(
        lisa_run(1).as_bytes(),
        lisa_run(4).as_bytes(),
        "LISA diverged"
    );
}

/// Different seeds change the SA trajectory (guards against a seed being
/// silently ignored, which would make the byte-identity tests vacuous).
#[test]
fn seeds_actually_reach_the_mapper() {
    let dfg = generate_random_dfg(&RandomDfgConfig::default(), 42);
    let acc = Accelerator::cgra("4x4", 4, 4);
    let placements = |seed: u64| {
        let mut sa = SaMapper::new(SaParams::fast(), seed);
        (2..=8)
            .find_map(|ii| sa.map_at_ii(&dfg, &acc, ii))
            .map(|m| format!("{m:?}"))
    };
    let runs: Vec<_> = (0..4).map(placements).collect();
    let distinct: std::collections::HashSet<_> = runs.iter().collect();
    assert!(
        distinct.len() > 1,
        "four different seeds produced identical mappings"
    );
}
