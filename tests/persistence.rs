//! Integration tests for trained-model persistence: export to disk,
//! reload in a "fresh process" (new `Lisa` instance), and verify that the
//! reloaded compiler behaves identically.

use lisa::arch::Accelerator;
use lisa::core::{Lisa, LisaConfig};
use lisa::dfg::polybench;

#[test]
fn model_roundtrips_through_a_file() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();

    let dir = std::env::temp_dir().join("lisa-model-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("4x4.lisa-model");
    std::fs::write(&path, lisa.export_model()).expect("write model");

    let text = std::fs::read_to_string(&path).expect("read model");
    let restored = Lisa::import_model(&LisaConfig::fast(), &text).expect("import");

    // Identical label predictions on every benchmark kernel.
    for name in ["gemm", "atax", "syr2k"] {
        let dfg = polybench::kernel(name).unwrap();
        assert_eq!(
            lisa.predict_labels(&dfg),
            restored.predict_labels(&dfg),
            "{name}: predictions diverge after reload"
        );
    }

    // And identical mapping outcomes (same labels + same seeds).
    let dfg = polybench::kernel("doitgen").unwrap();
    let (a, _) = lisa.map_capped(&dfg, &acc, 8);
    let (b, _) = restored.map_capped(&dfg, &acc, 8);
    assert_eq!(a.ii, b.ii);
    assert_eq!(a.routing_cells, b.routing_cells);

    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_model_is_rejected_cleanly() {
    let acc = Accelerator::cgra("3x3", 3, 3);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
    let mut text = lisa.export_model();
    // Corrupt a weight line in the middle.
    let mid = text.len() / 2;
    text.replace_range(mid..mid + 3, "zzz");
    assert!(Lisa::import_model(&LisaConfig::fast(), &text).is_err());
}

#[test]
fn exported_model_names_its_accelerator() {
    let acc = Accelerator::systolic("systolic-5x5", 5, 5);
    let lisa = Lisa::train_for(&acc, &LisaConfig::fast().for_systolic()).unwrap();
    let text = lisa.export_model();
    assert!(text.starts_with("lisa-model v1\naccelerator systolic-5x5\n"));
    let restored = Lisa::import_model(&LisaConfig::fast(), &text).unwrap();
    assert_eq!(restored.accelerator_name(), "systolic-5x5");
}
