//! Property-based tests over the core data structures and invariants,
//! spanning the DFG generator, the unroller, the attribute generator, the
//! mapping substrate, and label extraction.
//!
//! Runs on the in-repo harness (`lisa_rng::props!`): each property draws
//! its inputs from a stream seeded by the property's name, so failures are
//! deterministic and reported shrink-free with their concrete inputs.
//! Failures worth keeping are pinned as explicit `#[test]`s in the
//! `regressions` module at the bottom.

use lisa::arch::{Accelerator, PeId};
use lisa::dfg::{analysis, generate_random_dfg, unroll::unroll, RandomDfgConfig};
use lisa::labels::attributes::{DfgAttributes, EDGE_ATTR_DIM, NODE_ATTR_DIM};
use lisa::labels::extract::labels_from_mapping;
use lisa::mapper::schedule::IiSearch;
use lisa::mapper::{SaMapper, SaParams};

fn small_dfg_config() -> RandomDfgConfig {
    RandomDfgConfig {
        min_nodes: 4,
        max_nodes: 14,
        ..RandomDfgConfig::default()
    }
}

lisa_rng::props! {
    cases = 48;

    /// The random generator always produces valid, weakly connected DFGs
    /// whose ASAP levels respect every data edge.
    fn random_dfgs_are_valid(seed in 0u64..10_000) {
        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        assert!(dfg.validate().is_ok());
        assert!(dfg.is_weakly_connected());
        let asap = analysis::asap(&dfg);
        for e in dfg.edges() {
            if e.kind == lisa::dfg::EdgeKind::Data {
                assert!(asap[e.src.index()] < asap[e.dst.index()]);
            }
        }
    }

    /// ALAP never precedes ASAP, and both respect the critical path.
    fn slack_is_nonnegative(seed in 0u64..10_000) {
        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let asap = analysis::asap(&dfg);
        let alap = analysis::alap(&dfg);
        let cp = analysis::critical_path_len(&dfg);
        for v in dfg.node_ids() {
            assert!(alap[v.index()] >= asap[v.index()]);
            assert!(alap[v.index()] < cp);
        }
    }

    /// Unrolling by k multiplies node count by k and preserves validity;
    /// data-edge count scales at least k-fold.
    fn unroll_scales_structure(seed in 0u64..5_000, factor in 1u32..4) {
        let body = generate_random_dfg(&small_dfg_config(), seed);
        let u = unroll(&body, factor);
        assert!(u.validate().is_ok());
        assert_eq!(u.node_count(), body.node_count() * factor as usize);
        assert!(u.edge_count() >= body.edge_count() * factor as usize - factor as usize);
    }

    /// The Attributes Generator emits fixed-width finite vectors for every
    /// node and edge of any valid DFG.
    fn attributes_have_fixed_shape(seed in 0u64..10_000) {
        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let attrs = DfgAttributes::generate(&dfg);
        assert_eq!(attrs.node.len(), dfg.node_count());
        assert_eq!(attrs.edge.len(), dfg.edge_count());
        for v in &attrs.node {
            assert_eq!(v.len(), NODE_ATTR_DIM);
            assert!(v.iter().all(|x| x.is_finite()));
        }
        for v in &attrs.edge {
            assert_eq!(v.len(), EDGE_ATTR_DIM);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    /// Ancestor/descendant sets are duals: u is an ancestor of v iff v is
    /// a descendant of u.
    fn ancestor_descendant_duality(seed in 0u64..5_000) {
        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let anc = analysis::ancestor_sets(&dfg);
        let desc = analysis::descendant_sets(&dfg);
        for u in dfg.node_ids() {
            for v in dfg.node_ids() {
                assert_eq!(
                    anc[v.index()].contains(u),
                    desc[u.index()].contains(v)
                );
            }
        }
    }
}

lisa_rng::props! {
    // Mapping rounds are slower: fewer cases.
    cases = 12;

    /// Whatever SA produces verifies, and extracted labels satisfy the
    /// physical constraints (temporal >= spatial, temporal >= 1).
    fn sa_mappings_verify_and_labels_are_physical(seed in 0u64..500) {
        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut sa = SaMapper::new(SaParams::fast(), seed);
        let (outcome, mapping) =
            IiSearch { max_ii: Some(10) }.run_with_mapping(&mut sa, &dfg, &acc);
        if let Some(m) = mapping {
            assert!(m.verify().is_ok(), "verify failed: {:?}", m.verify());
            assert_eq!(outcome.ii, Some(m.ii()));
            let labels = labels_from_mapping(&m);
            for (s, t) in labels.spatial.iter().zip(&labels.temporal) {
                assert!(*t >= 1.0);
                assert!(t >= s, "temporal {} < spatial {}", t, s);
            }
            for o in &labels.schedule_order {
                assert!(o.is_finite() && *o >= 0.0);
            }
        }
    }

    /// A transaction is invisible after rollback: any random op sequence
    /// (place / unplace / route / unroute) applied inside `begin_txn` and
    /// rolled back leaves the mapping *byte-identical* to its pre-txn
    /// debug rendering — the exact contract the annealer's journal-based
    /// reject path relies on instead of cloning the mapping per movement.
    fn txn_rollback_is_byte_identical(seed in 0u64..500, op_seed in 0u64..u64::MAX) {
        use lisa::dfg::NodeId;

        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut sa = SaMapper::new(SaParams::fast(), seed);
        let (_, mapping) =
            IiSearch { max_ii: Some(8) }.run_with_mapping(&mut sa, &dfg, &acc);
        if let Some(mut m) = mapping {
            let mut rng = lisa_rng::Rng::seed_from_u64(op_seed);
            let snapshot = format!("{m:?}");
            m.begin_txn();
            for _ in 0..16 {
                match rng.gen_range(0..4u32) {
                    0 => {
                        // Place (or fail on an occupied FU — also a no-op).
                        let n = NodeId::new(rng.gen_range(0..dfg.node_count()));
                        if m.placement(n).is_none() {
                            let pe = PeId::new(rng.gen_range(0..acc.pe_count()));
                            let t = rng.gen_range(0..m.ii());
                            let _ = m.place(n, pe, t);
                        }
                    }
                    1 => {
                        let placed: Vec<NodeId> = dfg
                            .node_ids()
                            .filter(|n| m.placement(*n).is_some())
                            .collect();
                        if !placed.is_empty() {
                            m.unplace(placed[rng.gen_range(0..placed.len())]);
                        }
                    }
                    2 => {
                        let unrouted = m.unrouted_edges();
                        if !unrouted.is_empty() {
                            let _ = m.route_edge(unrouted[rng.gen_range(0..unrouted.len())]);
                        }
                    }
                    _ => {
                        let unrouted = m.unrouted_edges();
                        let routed: Vec<_> = dfg
                            .edge_ids()
                            .filter(|e| !unrouted.contains(e))
                            .collect();
                        if !routed.is_empty() {
                            m.unroute_edge(routed[rng.gen_range(0..routed.len())]);
                        }
                    }
                }
            }
            m.rollback();
            assert_eq!(snapshot.as_bytes(), format!("{m:?}").as_bytes());
            assert!(m.verify().is_ok(), "verify failed: {:?}", m.verify());
        }
    }

    /// Placement and unplacement are inverses: after ripping every node,
    /// the mapping is empty again and all cells are free.
    fn unplace_restores_empty_state(seed in 0u64..500) {
        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut sa = SaMapper::new(SaParams::fast(), seed);
        let (_, mapping) =
            IiSearch { max_ii: Some(10) }.run_with_mapping(&mut sa, &dfg, &acc);
        if let Some(mut m) = mapping {
            for v in dfg.node_ids() {
                m.unplace(v);
            }
            assert_eq!(m.routing_cells(), 0);
            assert_eq!(m.unplaced_nodes().len(), dfg.node_count());
            let a = m.activity();
            assert_eq!(a.total(), 0);
            // Every FU is free again.
            for pe in 0..acc.pe_count() {
                for t in 0..m.ii() {
                    assert!(m.fu_free(PeId::new(pe), t));
                }
            }
        }
    }
}

lisa_rng::props! {
    cases = 64;

    /// Direct router property: any returned route has exactly
    /// `latency - 1` steps at strictly consecutive cycles, each step moving
    /// to a structurally adjacent resource, and the final step can feed the
    /// destination PE.
    fn router_paths_are_time_synchronised(
        src in 0usize..16,
        dst in 0usize..16,
        latency in 1u32..8,
        ii in 1u32..5,
        blocked_mask in 0u64..u64::MAX,
    ) {
        use lisa::arch::{Mrrg, Resource};
        use lisa::mapper::router::find_route;

        let acc = Accelerator::cgra("4x4", 4, 4);
        let mrrg = Mrrg::new(&acc, ii).expect("ii in range");
        let src_pe = PeId::new(src);
        let dst_pe = PeId::new(dst);
        // Pseudorandomly block some FU cells (never the endpoints).
        let cost = |r: Resource, t: u32| -> Option<u32> {
            let idx = mrrg.index_at(r, t) as u64 % 64;
            if blocked_mask & (1 << idx) != 0 && r.is_fu() {
                None
            } else {
                Some(1)
            }
        };
        if let Some(steps) = find_route(&mrrg, lisa::dfg::NodeId::new(0), src_pe, 0, dst_pe, latency, cost) {
            assert_eq!(steps.len() as u32, latency - 1);
            let mut prev = Resource::Fu(src_pe);
            for (k, s) in steps.iter().enumerate() {
                assert_eq!(s.time, k as u32 + 1);
                assert!(
                    mrrg.moves_from(prev).contains(&s.resource),
                    "illegal move at step {}", k
                );
                prev = s.resource;
            }
            assert!(mrrg.can_consume(prev, dst_pe));
        } else if latency > 8 {
            // Unreachable: routes within the grid diameter always exist in
            // the unblocked case, but blocked masks may legitimately cut
            // all paths — nothing further to assert.
        }
    }

    /// Label extraction and re-ingestion: labels extracted from any valid
    /// mapping can always drive a fresh label-aware mapper without
    /// violating its shape assertions.
    fn extracted_labels_are_consumable(seed in 0u64..300) {
        use lisa::mapper::{LabelSaMapper, SaParams};
        use lisa::mapper::schedule::IiMapper;

        let dfg = generate_random_dfg(&small_dfg_config(), seed);
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut sa = SaMapper::new(SaParams::fast(), seed);
        let (_, mapping) =
            IiSearch { max_ii: Some(8) }.run_with_mapping(&mut sa, &dfg, &acc);
        if let Some(m) = mapping {
            let labels = labels_from_mapping(&m);
            assert!(labels.matches(&dfg));
            let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), seed);
            // One II attempt must not panic; success is not required.
            let _ = lisa.map_at_ii(&dfg, &acc, m.ii());
        }
    }
}

/// Failure cases previously saved by proptest
/// (`tests/proptests.proptest-regressions`), pinned as explicit named
/// tests so they run on every verify without an external seed file.
mod regressions {
    use super::*;

    /// Formerly `cc 2f634c…` — shrunk to `seed = 2942, factor = 2`: an
    /// accumulator recurrence whose factor-2 unrolling overflowed the op's
    /// data-edge arity.
    #[test]
    fn unroll_scales_structure_seed_2942_factor_2() {
        let body = generate_random_dfg(&small_dfg_config(), 2942);
        let u = unroll(&body, 2);
        assert!(u.validate().is_ok());
        assert_eq!(u.node_count(), body.node_count() * 2);
        assert!(u.edge_count() >= body.edge_count() * 2 - 2);
    }
}
